// Fleet coordinator tests: in-process worker daemons on ephemeral TCP
// ports behind a FleetCoordinator must produce DetectionReport signatures
// byte-identical to a direct single-process audit (cold and warm), survive
// a worker death by re-sharding onto the survivors, refuse overload with a
// structured retry-after (and the retrying client must back off), and —
// via the shared L2 store's claim protocol — compute each obligation at
// most once across worker processes even under concurrent duplicate
// submissions.
//
// Everything that can block on socket I/O runs under run_leg() (condition
// variable + hard timeout), mirroring test_service.cpp: a wedged fleet
// fails in seconds with a diagnostic instead of hanging CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/verdict_cache.hpp"
#include "cache/verdict_codec.hpp"
#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/shard.hpp"
#include "proof/json.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/exposition.hpp"
#include "service/protocol.hpp"
#include "service/telemetry_wire.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "verilog/writer.hpp"

namespace trojanscout::fleet {
namespace {

namespace fs = std::filesystem;
using service::AuditDaemon;
using service::AuditJob;
using service::Client;
using service::SubmitResult;
using service::submit_audit;

constexpr std::chrono::seconds kLegTimeout{120};

void run_leg(const char* what, const std::function<void()>& body) {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::thread worker([&] {
    body();
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  if (!cv.wait_for(lock, kLegTimeout, [&] { return done; })) {
    std::cerr << "FATAL: test leg '" << what << "' still blocked after "
              << kLegTimeout.count() << "s — fleet deadlock\n";
    std::_Exit(2);
  }
  lock.unlock();
  worker.join();
}

constexpr const char* kMc8051Spec =
    "register sp\n"
    "  way \"Reset\"     : reset == 1 -> const 0x07\n"
    "  way \"LCALL\"     : phase == 1 && opcode == 0x12 -> add 1\n"
    "  way \"RET\"       : phase == 1 && opcode == 0x22 -> sub 1\n"
    "  way \"MOV SP,#d\" : phase == 1 && opcode == 0x75 -> code_operand\n";

/// One in-process worker daemon: private L1, optional shared L2, ephemeral
/// TCP port.
struct WorkerHarness {
  WorkerHarness(const std::string& l1_dir, cache::VerdictCache* l2) {
    l1 = std::make_unique<cache::VerdictCache>(cache::VerdictCache::Options{
        l1_dir, cache::CacheMode::kReadWrite, /*max_bytes=*/0});
    AuditDaemon::Options options;
    options.endpoint = "tcp:127.0.0.1:0";
    options.jobs = 2;
    options.cache = l1.get();
    options.l2 = l2;
    daemon = std::make_unique<AuditDaemon>(options);
    daemon->start();
    endpoint = daemon->bound_endpoint();
  }

  std::unique_ptr<cache::VerdictCache> l1;
  std::unique_ptr<AuditDaemon> daemon;
  std::string endpoint;
};

/// Temp work area plus the direct-audit signature the fleet must match.
struct FleetFixture {
  FleetFixture() {
    char tmpl[] = "/tmp/ts_fleet_test_XXXXXX";
    dir = ::mkdtemp(tmpl);
    design_path = dir + "/mc8051.v";
    spec_path = dir + "/mc8051_sp.spec";
    const designs::Design design = designs::build_clean("mc8051");
    std::ofstream vs(design_path);
    verilog::write_verilog(vs, design.nl, design.name);
    std::ofstream ss(spec_path);
    ss << kMc8051Spec;
  }
  ~FleetFixture() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  AuditJob job(std::size_t frames = 6) const {
    AuditJob j;
    j.id = "fleet-job";
    j.design_path = design_path;
    j.spec_path = spec_path;
    j.frames = frames;
    return j;
  }

  std::string direct_signature(const AuditJob& j) const {
    designs::Design design = service::load_job_design(j);
    core::ParallelDetectorOptions options;
    options.detector = j.detector_options();
    options.jobs = 2;
    return core::ParallelDetector(design, options).run().signature();
  }

  /// Spawns `count` workers (worker i's L1 under dir/l1-i), sharing `l2`.
  std::vector<std::unique_ptr<WorkerHarness>> spawn_workers(
      std::size_t count, cache::VerdictCache* l2 = nullptr) {
    std::vector<std::unique_ptr<WorkerHarness>> workers;
    for (std::size_t i = 0; i < count; ++i) {
      workers.push_back(std::make_unique<WorkerHarness>(
          dir + "/l1-" + std::to_string(i), l2));
    }
    return workers;
  }

  FleetCoordinator::Options coordinator_options(
      const std::vector<std::unique_ptr<WorkerHarness>>& workers) const {
    FleetCoordinator::Options options;
    options.endpoint = "tcp:127.0.0.1:0";
    for (const auto& worker : workers) {
      options.workers.push_back(worker->endpoint);
    }
    // Tests drive failure detection through the dispatch path; the health
    // prober would only add scheduling noise.
    options.health_interval_seconds = 0;
    options.worker_connect.attempts = 2;
    options.worker_connect.base_delay_ms = 10;
    return options;
  }

  std::string dir;
  std::string design_path;
  std::string spec_path;
};

TEST(FleetCoordinator, ThreeWorkerFleetMatchesDirectAuditColdAndWarm) {
  FleetFixture fx;
  cache::VerdictCache l2({fx.dir + "/l2", cache::CacheMode::kReadWrite,
                          /*max_bytes=*/0});
  auto workers = fx.spawn_workers(3, &l2);
  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();

  const AuditJob job = fx.job();
  SubmitResult cold;
  SubmitResult warm;
  std::size_t obligation_lines = 0;
  run_leg("cold fleet submit", [&] {
    Client client(coordinator.bound_endpoint());
    cold = submit_audit(client, job,
                        [&obligation_lines](const proof::Json& r) {
                          const proof::Json* type = r.find("type");
                          if (type != nullptr && type->is_string() &&
                              type->as_string() == "obligation") {
                            obligation_lines++;
                          }
                        });
  });
  run_leg("warm fleet submit", [&] {
    Client client(coordinator.bound_endpoint());
    warm = submit_audit(client, job);
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();

  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(warm.ok) << warm.error;
  const std::string expected = fx.direct_signature(job);
  EXPECT_EQ(cold.signature, expected)
      << "sharded cold audit must merge to the direct-audit report";
  EXPECT_EQ(warm.signature, expected);
  EXPECT_GT(cold.obligations, 0u);
  EXPECT_EQ(obligation_lines, cold.obligations)
      << "the coordinator must stream one line per obligation";
  EXPECT_EQ(cold.computed, cold.obligations);
  EXPECT_EQ(warm.cache_hits, warm.obligations)
      << "warm resubmit must be answered entirely from worker caches";
  EXPECT_EQ(warm.computed, 0u);
  EXPECT_EQ(coordinator.jobs_completed(), 2u);
  EXPECT_EQ(coordinator.reshards(), 0u);
}

TEST(FleetCoordinator, WorkerDeathIsReShardedOntoSurvivors) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  const AuditJob job = fx.job();

  // Find which worker the ring assigns obligation 0 and kill exactly that
  // one, so the re-shard path is exercised deterministically.
  const designs::Design design = service::load_job_design(job);
  const cache::ObligationKeyer keyer(design, job.detector_options(),
                                     /*fail_fast=*/false);
  core::TrojanDetector detector(design, job.detector_options());
  const std::string key0 = keyer.key(detector.enumerate_obligations().at(0));
  ShardRing ring;
  ring.add(workers[0]->endpoint);
  ring.add(workers[1]->endpoint);
  const std::size_t victim = ring.node_for(key0) == workers[0]->endpoint
                                 ? 0
                                 : 1;
  workers[victim]->daemon->stop();

  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();
  SubmitResult result;
  run_leg("submit with a dead worker", [&] {
    Client client(coordinator.bound_endpoint());
    result = submit_audit(client, job);
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.signature, fx.direct_signature(job))
      << "the job must complete on the survivor with an identical report";
  EXPECT_GE(coordinator.reshards(), 1u)
      << "the dead worker owned obligation 0, so a re-shard must happen";
}

TEST(FleetCoordinator, OverloadIsRefusedWithRetryAfterAndClientBacksOff) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(1);
  const AuditJob job = fx.job();

  FleetCoordinator::Options options = fx.coordinator_options(workers);
  // Any shard of this job (several obligations, one worker) exceeds a
  // one-obligation queue, so admission control must refuse deterministically.
  options.queue_capacity = 1;
  options.retry_after_ms = 5;
  FleetCoordinator coordinator(options);
  coordinator.start();

  SubmitResult refused;
  std::size_t backoffs = 0;
  run_leg("overloaded submits", [&] {
    {
      Client client(coordinator.bound_endpoint());
      refused = submit_audit(client, job);
    }
    // The retrying client must observe the hint, back off, and eventually
    // surface the refusal instead of dropping the job silently.
    const SubmitResult after_retries = service::submit_audit_with_retry(
        coordinator.bound_endpoint(), job, service::ConnectRetry{},
        /*max_retries=*/2, nullptr,
        [&backoffs](std::uint64_t delay_ms) {
          EXPECT_GE(delay_ms, 5u);
          backoffs++;
        });
    EXPECT_FALSE(after_retries.ok);
    EXPECT_GT(after_retries.retry_after_ms, 0u);
  });
  coordinator.stop();

  EXPECT_FALSE(refused.ok);
  EXPECT_GT(refused.retry_after_ms, 0u) << refused.error;
  EXPECT_EQ(backoffs, 2u);
  EXPECT_EQ(coordinator.retry_after_sent(), 4u)
      << "one direct refusal + three refused attempts of the retry loop";

  // The same worker behind an adequately-sized queue completes the job.
  FleetCoordinator::Options roomy = fx.coordinator_options(workers);
  roomy.queue_capacity = 64;
  FleetCoordinator ok_coordinator(roomy);
  ok_coordinator.start();
  SubmitResult result;
  run_leg("same job under a roomy queue", [&] {
    Client client(ok_coordinator.bound_endpoint());
    result = submit_audit(client, job);
  });
  ok_coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.signature, fx.direct_signature(job));
}

TEST(FleetCoordinator, SharedL2ComputesEachObligationOnceAcrossWorkers) {
  FleetFixture fx;
  cache::VerdictCache l2({fx.dir + "/l2", cache::CacheMode::kReadWrite,
                          /*max_bytes=*/0});
  auto workers = fx.spawn_workers(2, &l2);
  const AuditJob job = fx.job();

  telemetry::Registry& registry = telemetry::Registry::global();
  registry.set_enabled(true);
  const auto counter_of = [&registry](const std::string& name) {
    for (const auto& counter : registry.snapshot().counters) {
      if (counter.name == name) return counter.value;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t owners_before = counter_of("cache.l2_claim_owner");

  // Identical jobs race on both workers at once: the L2 claim protocol
  // must arbitrate so every obligation runs an engine on exactly one
  // worker; the other adopts the published verdict (shared or cache).
  std::vector<SubmitResult> results(2);
  run_leg("concurrent duplicate submissions", [&] {
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([&, i] {
        Client client(workers[static_cast<std::size_t>(i)]->endpoint);
        results[static_cast<std::size_t>(i)] = submit_audit(client, job);
      });
    }
    for (auto& thread : threads) thread.join();
  });
  for (auto& worker : workers) worker->daemon->stop();

  const std::uint64_t owners_after = counter_of("cache.l2_claim_owner");
  registry.set_enabled(false);

  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(results[0].signature, results[1].signature);
  EXPECT_EQ(results[0].signature, fx.direct_signature(job));
  const std::uint64_t obligations = results[0].obligations;
  EXPECT_EQ(results[0].computed + results[1].computed, obligations)
      << "fleet-wide claim dedupe must compute each obligation exactly once";
  EXPECT_EQ(results[0].cache_hits + results[0].shared + results[1].cache_hits +
                results[1].shared,
            obligations);
  EXPECT_EQ(owners_after - owners_before, obligations)
      << "every key must be claimed by exactly one owner";
}

/// Reads a whole file; empty string doubles as "missing" for the asserts.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FleetCoordinator, TraceStitchingYieldsOneValidTraceWithParity) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  FleetCoordinator::Options options = fx.coordinator_options(workers);
  options.trace_out = fx.dir + "/fleet_trace.json";
  // All taps on at once: stitched trace + event log + registry — none may
  // perturb the merged report.
  telemetry::EventLog events(fx.dir + "/events.jsonl");
  ASSERT_TRUE(events.ok());
  telemetry::EventLog::set_global(&events);
  FleetCoordinator coordinator(options);
  coordinator.start();

  const AuditJob job = fx.job();
  SubmitResult cold;
  SubmitResult warm;
  std::string trace_id;
  bool report_had_tail = false;
  run_leg("cold traced submit", [&] {
    Client client(coordinator.bound_endpoint());
    cold = submit_audit(client, job, [&](const proof::Json& r) {
      const proof::Json* type = r.find("type");
      if (type == nullptr || !type->is_string() ||
          type->as_string() != "report") {
        return;
      }
      const proof::Json* id = r.find("trace_id");
      if (id != nullptr && id->is_string()) trace_id = id->as_string();
      const proof::Json* tail = r.find("slowest");
      report_had_tail = tail != nullptr && tail->is_array();
    });
  });
  run_leg("warm traced submit", [&] {
    Client client(coordinator.bound_endpoint());
    warm = submit_audit(client, job);
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  telemetry::EventLog::set_global(nullptr);

  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(warm.ok) << warm.error;
  const std::string expected = fx.direct_signature(job);
  EXPECT_EQ(cold.signature, expected)
      << "tracing must not perturb the merged report";
  EXPECT_EQ(warm.signature, expected);
  EXPECT_EQ(trace_id.rfind("fleet-", 0), 0u) << "trace_id: " << trace_id;
  EXPECT_TRUE(report_had_tail)
      << "a traced fleet report must carry the slowest-obligations table";

  // One Chrome trace for the whole run: every worker span renumbered into
  // the coordinator's id/tid/clock namespace. The invariants mirror
  // tools/check_metrics.py check_trace.
  proof::Json trace;
  std::string error;
  ASSERT_TRUE(proof::Json::parse(slurp(options.trace_out), trace, &error))
      << error;
  const proof::Json* trace_events = trace.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());

  std::vector<std::uint64_t> begun;
  std::map<std::int64_t, std::int64_t> last_ts;  // tid -> ts (file order)
  std::size_t job_spans = 0;
  std::size_t shard_spans = 0;
  std::size_t obligation_spans = 0;
  std::size_t stitched_tids = 0;
  for (const proof::Json& event : trace_events->items()) {
    ASSERT_TRUE(event.is_object());
    const std::string& ph = event.find("ph")->as_string();
    const std::string& name = event.find("name")->as_string();
    const std::int64_t tid = event.find("tid")->as_int();
    const std::int64_t ts = event.find("ts")->as_int();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ts)
          << "timestamps must stay monotone per tid after clock rebasing "
          << "(tid " << tid << ", span " << name << ")";
    }
    last_ts[tid] = ts;
    if (ph != "B") continue;
    begun.push_back(static_cast<std::uint64_t>(
        event.find("args")->find("span_id")->as_int()));
    if (name.rfind("fleet:job:", 0) == 0) job_spans++;
    if (name.rfind("fleet:shard:", 0) == 0) shard_spans++;
    if (name.rfind("obligation:", 0) == 0) obligation_spans++;
    if (tid >= 1000) stitched_tids++;
  }
  EXPECT_EQ(job_spans, 2u) << "one fleet:job span per traced job";
  EXPECT_GE(shard_spans, 2u);
  EXPECT_GE(obligation_spans, 2u)
      << "worker obligation spans must survive the stitch";
  EXPECT_GT(stitched_tids, 0u)
      << "stitched worker events must land on namespaced tids";
  const std::set<std::uint64_t> begun_set(begun.begin(), begun.end());
  EXPECT_EQ(begun_set.size(), begun.size()) << "span ids must be unique";
  for (const proof::Json& event : trace_events->items()) {
    const proof::Json* args = event.find("args");
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "B") {
      const auto parent =
          static_cast<std::uint64_t>(args->find("parent_id")->as_int());
      EXPECT_TRUE(parent == 0 || begun_set.count(parent) != 0)
          << "parent " << parent << " of span "
          << event.find("name")->as_string() << " never begun";
    } else {
      const auto span =
          static_cast<std::uint64_t>(args->find("span_id")->as_int());
      EXPECT_TRUE(begun_set.count(span) != 0)
          << "end of span " << span << " never begun";
    }
  }
}

TEST(FleetCoordinator, WorkerDeathEmitsEvictionAndReshardEvents) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  const AuditJob job = fx.job();

  // Kill the worker that owns obligation 0 (as in the re-shard test), so
  // the event log must record its death, the eviction, and the re-shard.
  const designs::Design design = service::load_job_design(job);
  const cache::ObligationKeyer keyer(design, job.detector_options(),
                                     /*fail_fast=*/false);
  core::TrojanDetector detector(design, job.detector_options());
  const std::string key0 = keyer.key(detector.enumerate_obligations().at(0));
  ShardRing ring;
  ring.add(workers[0]->endpoint);
  ring.add(workers[1]->endpoint);
  const std::size_t victim =
      ring.node_for(key0) == workers[0]->endpoint ? 0 : 1;
  workers[victim]->daemon->stop();

  telemetry::EventLog events(fx.dir + "/events.jsonl");
  ASSERT_TRUE(events.ok());
  telemetry::EventLog::set_global(&events);
  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();
  SubmitResult result;
  run_leg("submit with a dead worker", [&] {
    Client client(coordinator.bound_endpoint());
    result = submit_audit(client, job);
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  telemetry::EventLog::set_global(nullptr);
  ASSERT_TRUE(result.ok) << result.error;

  std::istringstream in(slurp(events.path()));
  std::string line;
  std::uint64_t expected_seq = 0;
  std::size_t lineno = 0;
  std::map<std::string, std::size_t> seen;
  std::string evicted_endpoint;
  while (std::getline(in, line)) {
    lineno++;
    proof::Json record;
    std::string error;
    ASSERT_TRUE(proof::Json::parse(line, record, &error))
        << "line " << lineno << ": " << error;
    ASSERT_TRUE(record.is_object());
    ASSERT_FALSE(record.entries().empty());
    EXPECT_EQ(record.entries().front().first, "type")
        << "line " << lineno << ": 'type' must be the first field";
    const std::string& type = record.find("type")->as_string();
    EXPECT_EQ((lineno == 1), (type == "header"))
        << "the schema header must be exactly the first record";
    // The sink is one mutex-serialized append stream: seq is the total
    // order of everything this process observed, with no gaps.
    ASSERT_NE(record.find("seq"), nullptr) << "line " << lineno;
    EXPECT_EQ(static_cast<std::uint64_t>(record.find("seq")->as_int()),
              expected_seq)
        << "line " << lineno;
    expected_seq++;
    seen[type]++;
    if (type == "header") {
      EXPECT_EQ(record.find("schema")->as_string(), "trojanscout-events-v1");
    }
    if (type == "worker_evicted") {
      evicted_endpoint = record.find("endpoint")->as_string();
      EXPECT_EQ(record.find("live")->as_int(), 1);
    }
  }
  EXPECT_EQ(events.record_count(), expected_seq);
  EXPECT_EQ(seen["worker_up"], 2u);
  EXPECT_GE(seen["worker_down"], 1u);
  EXPECT_GE(seen["worker_evicted"], 1u);
  EXPECT_GE(seen["reshard"], 1u)
      << "the dead worker owned obligation 0, so a re-shard must be logged";
  EXPECT_EQ(evicted_endpoint, workers[victim]->endpoint);
}

TEST(FleetCoordinator, StatsReplyMergesWorkerTelemetryExactly) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();

  // One real job first, so the worker registries hold non-trivial
  // counters and engine-timer histograms.
  const AuditJob job = fx.job();
  SubmitResult result;
  proof::Json reply;
  run_leg("submit then stats", [&] {
    {
      Client client(coordinator.bound_endpoint());
      result = submit_audit(client, job);
    }
    Client client(coordinator.bound_endpoint());
    client.send_line(service::control_request_line("stats"));
    ASSERT_TRUE(client.read_response(reply));
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  ASSERT_TRUE(result.ok) << result.error;

  ASSERT_NE(reply.find("type"), nullptr);
  EXPECT_EQ(reply.find("type")->as_string(), "stats");
  EXPECT_EQ(reply.find("role")->as_string(), "coordinator");
  EXPECT_EQ(reply.find("pid")->as_int(),
            static_cast<std::int64_t>(::getpid()));
  EXPECT_GE(reply.find("uptime_s")->as_double(), 0.0);
  ASSERT_NE(reply.find("slowest"), nullptr);
  EXPECT_TRUE(reply.find("slowest")->is_array());

  const proof::Json* worker_rows = reply.find("workers");
  ASSERT_NE(worker_rows, nullptr);
  ASSERT_EQ(worker_rows->items().size(), 2u);
  telemetry::Registry::Snapshot expected;
  std::string error;
  for (const proof::Json& row : worker_rows->items()) {
    EXPECT_TRUE(row.find("alive")->as_bool());
    ASSERT_NE(row.find("pid"), nullptr);
    ASSERT_NE(row.find("uptime_s"), nullptr);
    ASSERT_NE(row.find("jobs_completed"), nullptr);
    const proof::Json* snapshot_json = row.find("telemetry");
    ASSERT_NE(snapshot_json, nullptr)
        << "each live worker must report its registry snapshot";
    telemetry::Registry::Snapshot snapshot;
    ASSERT_TRUE(service::snapshot_from_json(*snapshot_json, snapshot, &error))
        << error;
    service::merge_snapshot(expected, snapshot);
  }
  telemetry::Registry::Snapshot merged;
  ASSERT_NE(reply.find("telemetry"), nullptr);
  ASSERT_TRUE(
      service::snapshot_from_json(*reply.find("telemetry"), merged, &error))
      << error;

  // The coordinator's merge must be the exact sum of what it reported per
  // worker — counters by name, histogram counts and buckets element-wise.
  ASSERT_EQ(merged.counters.size(), expected.counters.size());
  bool any_counter = false;
  for (std::size_t i = 0; i < merged.counters.size(); ++i) {
    EXPECT_EQ(merged.counters[i].name, expected.counters[i].name);
    EXPECT_EQ(merged.counters[i].value, expected.counters[i].value)
        << merged.counters[i].name;
    any_counter = any_counter || merged.counters[i].value > 0;
  }
  EXPECT_TRUE(any_counter) << "the audit job must have left counters";
  ASSERT_EQ(merged.histograms.size(), expected.histograms.size());
  for (std::size_t i = 0; i < merged.histograms.size(); ++i) {
    EXPECT_EQ(merged.histograms[i].name, expected.histograms[i].name);
    EXPECT_EQ(merged.histograms[i].count, expected.histograms[i].count)
        << merged.histograms[i].name;
    EXPECT_EQ(merged.histograms[i].buckets, expected.histograms[i].buckets)
        << merged.histograms[i].name;
  }

  const proof::Json* own = reply.find("coordinator_telemetry");
  ASSERT_NE(own, nullptr);
  telemetry::Registry::Snapshot coordinator_snapshot;
  EXPECT_TRUE(service::snapshot_from_json(*own, coordinator_snapshot, &error))
      << error;
}

TEST(FleetCoordinator, MetricsScrapeAggregatesWorkerRegistries) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();

  const AuditJob job = fx.job();
  SubmitResult result;
  proof::Json stats;
  proof::Json metrics;
  run_leg("submit then stats + metrics", [&] {
    {
      Client client(coordinator.bound_endpoint());
      result = submit_audit(client, job);
    }
    Client client(coordinator.bound_endpoint());
    client.send_line(service::control_request_line("stats"));
    ASSERT_TRUE(client.read_response(stats));
    client.send_line(service::control_request_line("metrics"));
    ASSERT_TRUE(client.read_response(metrics));
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  ASSERT_TRUE(result.ok) << result.error;

  ASSERT_EQ(metrics.find("type")->as_string(), "metrics");
  EXPECT_EQ(metrics.find("content_type")->as_string(),
            "text/plain; version=0.0.4");
  service::ParsedExposition parsed;
  std::string error;
  ASSERT_TRUE(service::parse_prometheus_text(
      metrics.find("body")->as_string(), parsed, &error))
      << error;

  // Coordinator-level counters and fleet-shape gauges.
  EXPECT_EQ(parsed.counters.at("trojanscout_fleet_jobs_completed_total"), 1u);
  EXPECT_EQ(parsed.counters.at("trojanscout_fleet_bad_requests_total"), 0u);
  EXPECT_EQ(parsed.gauges.at("trojanscout_up"), 1.0);
  EXPECT_EQ(parsed.gauges.at("trojanscout_workers_total"), 2.0);
  EXPECT_EQ(parsed.gauges.at("trojanscout_workers_live"), 2.0);
  EXPECT_EQ(parsed.gauges.at("trojanscout_workers_responding"), 2.0);
  // The labelled per-worker liveness family parses (first sample kept).
  EXPECT_EQ(parsed.gauges.at("trojanscout_worker_up"), 1.0);

  // The exposition renders the same worker-merge the stats reply carries
  // as "telemetry". Registry counters are monotonic and worker pool tasks
  // can still be retiring between the two requests, so the later scrape
  // must be >= the earlier merge, never below it.
  telemetry::Registry::Snapshot merged;
  ASSERT_NE(stats.find("telemetry"), nullptr);
  ASSERT_TRUE(
      service::snapshot_from_json(*stats.find("telemetry"), merged, &error))
      << error;
  bool checked_engine_runs = false;
  for (const auto& counter : merged.counters) {
    if (counter.name != "engine.runs") continue;
    EXPECT_GT(counter.value, 0u);
    EXPECT_GE(parsed.counters.at("trojanscout_engine_runs_total"),
              counter.value);
    checked_engine_runs = true;
  }
  EXPECT_TRUE(checked_engine_runs)
      << "the audit job must have run engines on the workers";
  // Every merged histogram surfaces as a well-formed _seconds family.
  for (const auto& hist : merged.histograms) {
    const std::string family =
        "trojanscout_" + service::prometheus_name(hist.name) + "_seconds";
    ASSERT_TRUE(parsed.histograms.count(family) > 0) << family;
    EXPECT_GE(parsed.histograms.at(family).count, hist.count) << family;
  }
}

TEST(FleetCoordinator, StatsFanOutMarksUnresponsiveWorkerAndSumsPartially) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  FleetCoordinator coordinator(fx.coordinator_options(workers));
  coordinator.start();

  const AuditJob job = fx.job();
  SubmitResult result;
  proof::Json reply;
  run_leg("submit, kill one worker, stats", [&] {
    {
      Client client(coordinator.bound_endpoint());
      result = submit_audit(client, job);
    }
    // The worker dies silently after the job; the health prober is off,
    // so the ring still believes it is alive and only the stats fan-out
    // itself can discover the silence.
    workers[1]->daemon->stop();
    Client client(coordinator.bound_endpoint());
    client.send_line(service::control_request_line("stats"));
    ASSERT_TRUE(client.read_response(reply));
  });
  coordinator.stop();
  workers[0]->daemon->stop();
  ASSERT_TRUE(result.ok) << result.error;

  const proof::Json* worker_rows = reply.find("workers");
  ASSERT_NE(worker_rows, nullptr);
  ASSERT_EQ(worker_rows->items().size(), 2u);
  telemetry::Registry::Snapshot expected;
  std::string error;
  std::size_t responding = 0;
  for (const proof::Json& row : worker_rows->items()) {
    const bool responded = row.find("responding")->as_bool();
    if (!responded) {
      // The silent worker is marked, not silently merged as zero, and no
      // stale per-worker detail rides along.
      EXPECT_EQ(row.find("telemetry"), nullptr);
      EXPECT_EQ(row.find("jobs_completed"), nullptr);
      continue;
    }
    responding++;
    const proof::Json* snapshot_json = row.find("telemetry");
    ASSERT_NE(snapshot_json, nullptr);
    telemetry::Registry::Snapshot snapshot;
    ASSERT_TRUE(service::snapshot_from_json(*snapshot_json, snapshot, &error))
        << error;
    service::merge_snapshot(expected, snapshot);
  }
  EXPECT_EQ(responding, 1u) << "exactly the stopped worker must be absent";

  // The merged fleet telemetry is exactly the partial sum over the
  // workers that answered this fan-out.
  telemetry::Registry::Snapshot merged;
  ASSERT_NE(reply.find("telemetry"), nullptr);
  ASSERT_TRUE(
      service::snapshot_from_json(*reply.find("telemetry"), merged, &error))
      << error;
  ASSERT_EQ(merged.counters.size(), expected.counters.size());
  for (std::size_t i = 0; i < merged.counters.size(); ++i) {
    EXPECT_EQ(merged.counters[i].name, expected.counters[i].name);
    EXPECT_EQ(merged.counters[i].value, expected.counters[i].value)
        << merged.counters[i].name;
  }
  ASSERT_EQ(merged.histograms.size(), expected.histograms.size());
  for (std::size_t i = 0; i < merged.histograms.size(); ++i) {
    EXPECT_EQ(merged.histograms[i].buckets, expected.histograms[i].buckets)
        << merged.histograms[i].name;
  }
}

TEST(FleetCoordinator, SloBreachesTickCountersAndEmitEvents) {
  FleetFixture fx;
  auto workers = fx.spawn_workers(2);
  telemetry::EventLog events(fx.dir + "/slo_events.jsonl");
  ASSERT_TRUE(events.ok());
  telemetry::EventLog::set_global(&events);
  FleetCoordinator::Options options = fx.coordinator_options(workers);
  // 1 ms budgets: any real engine run breaches both scopes.
  options.slo_job_ms = 1;
  options.slo_obligation_ms = 1;
  FleetCoordinator coordinator(options);
  coordinator.start();

  SubmitResult result;
  proof::Json reply;
  run_leg("submit under an impossible SLO", [&] {
    {
      Client client(coordinator.bound_endpoint());
      result = submit_audit(client, fx.job());
    }
    Client client(coordinator.bound_endpoint());
    client.send_line(service::control_request_line("stats"));
    ASSERT_TRUE(client.read_response(reply));
  });
  coordinator.stop();
  for (auto& worker : workers) worker->daemon->stop();
  telemetry::EventLog::set_global(nullptr);
  ASSERT_TRUE(result.ok) << result.error;

  const proof::Json* slo = reply.find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->find("job_ms")->as_double(), 1.0);
  EXPECT_EQ(slo->find("obligation_ms")->as_double(), 1.0);
  const auto job_breaches =
      static_cast<std::uint64_t>(slo->find("job_breaches")->as_int());
  const auto obligation_breaches =
      static_cast<std::uint64_t>(slo->find("obligation_breaches")->as_int());
  EXPECT_EQ(job_breaches, 1u);
  EXPECT_GE(obligation_breaches, 1u)
      << "a 1ms obligation budget cannot be met by a real engine run";

  // Every breach is also an events-v1 record with enough context to find
  // the offender: scope, job, elapsed vs budget, worker for obligations.
  std::istringstream in(slurp(events.path()));
  std::string line;
  std::uint64_t job_events = 0;
  std::uint64_t obligation_events = 0;
  while (std::getline(in, line)) {
    proof::Json record;
    std::string error;
    ASSERT_TRUE(proof::Json::parse(line, record, &error)) << error;
    if (record.find("type")->as_string() != "slo_breach") continue;
    EXPECT_EQ(record.find("job")->as_string(), "fleet-job");
    ASSERT_NE(record.find("elapsed_ms"), nullptr);
    EXPECT_GT(record.find("elapsed_ms")->as_double(), 1.0);
    EXPECT_EQ(record.find("slo_ms")->as_double(), 1.0);
    const std::string& scope = record.find("scope")->as_string();
    if (scope == "job") {
      job_events++;
    } else {
      EXPECT_EQ(scope, "obligation");
      ASSERT_NE(record.find("worker"), nullptr);
      ASSERT_NE(record.find("property"), nullptr);
      obligation_events++;
    }
  }
  EXPECT_EQ(job_events, job_breaches);
  EXPECT_EQ(obligation_events, obligation_breaches);
}

}  // namespace
}  // namespace trojanscout::fleet
