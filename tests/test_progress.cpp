// Live progress reporter and stall watchdog: manual-tick watchdog
// semantics, heartbeat line content, RunReport stall records, solver
// progress publication, and an end-to-end parallel audit with the
// reporter installed.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/run_report.hpp"

namespace trojanscout::telemetry {
namespace {

ProgressOptions manual_options(double stall_window = 30.0) {
  ProgressOptions options;
  options.interval_seconds = 0.0;  // no background thread; tick() by hand
  options.stall_window_seconds = stall_window;
  options.render = false;
  return options;
}

TEST(ProgressTest, AggregateCountsTasks) {
  ProgressReporter reporter(manual_options());
  reporter.add_planned(3);
  auto a = reporter.begin("corruption(sp)");
  auto b = reporter.begin("bypass(sp)");
  a->cells.conflicts.store(10, std::memory_order_relaxed);
  b->cells.frames.store(7, std::memory_order_relaxed);
  a->finish();

  const auto agg = reporter.aggregate();
  EXPECT_EQ(agg.planned, 3u);
  EXPECT_EQ(agg.started, 2u);
  EXPECT_EQ(agg.done, 1u);
  EXPECT_EQ(agg.active, 1u);
  EXPECT_EQ(agg.conflicts, 10u);
  EXPECT_EQ(agg.deepest_frame, 7u);
  EXPECT_EQ(agg.deepest_label, "bypass(sp)");
}

TEST(ProgressTest, WatchdogFlagsFrozenObligationOnly) {
  // A "looping" obligation whose counters never advance (mimicking a solver
  // stuck between publications) next to one that keeps advancing and
  // completes: only the frozen one may stall, and nothing is aborted.
  ProgressReporter reporter(manual_options(/*stall_window=*/0.01));
  reporter.add_planned(2);
  auto frozen = reporter.begin("corruption(hard)");
  auto advancing = reporter.begin("corruption(easy)");
  frozen->cells.conflicts.store(5, std::memory_order_relaxed);

  reporter.tick();  // records both keys as the watchdog baseline
  for (int i = 1; i <= 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    advancing->cells.conflicts.store(100 + i, std::memory_order_relaxed);
    reporter.tick();
  }
  advancing->finish();
  reporter.tick();

  ASSERT_EQ(reporter.stall_count(), 1u);
  const auto stalls = reporter.stall_events();
  EXPECT_EQ(stalls[0].property, "corruption(hard)");
  EXPECT_EQ(stalls[0].progress_key, 5u);
  EXPECT_GE(stalls[0].stalled_seconds, 0.01);
  // Sticky per episode: repeated ticks while still frozen add no events.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  reporter.tick();
  EXPECT_EQ(reporter.stall_count(), 1u);

  // The other obligation completed normally.
  const auto agg = reporter.aggregate();
  EXPECT_EQ(agg.done, 1u);
  EXPECT_EQ(agg.stalled, 1u);
}

TEST(ProgressTest, StallClearsWhenProgressResumes) {
  ProgressReporter reporter(manual_options(/*stall_window=*/0.01));
  auto task = reporter.begin("corruption(sp)");
  reporter.tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  reporter.tick();
  ASSERT_EQ(reporter.stall_count(), 1u);

  // Progress resumes, then freezes again: a second episode is recorded.
  task->cells.conflicts.store(1, std::memory_order_relaxed);
  reporter.tick();
  EXPECT_EQ(reporter.aggregate().stalled, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  reporter.tick();
  EXPECT_EQ(reporter.stall_count(), 2u);
}

TEST(ProgressTest, DoneTasksNeverStall) {
  ProgressReporter reporter(manual_options(/*stall_window=*/0.01));
  auto task = reporter.begin("corruption(sp)");
  task->finish();
  reporter.tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  reporter.tick();
  EXPECT_EQ(reporter.stall_count(), 0u);
}

TEST(ProgressTest, HeartbeatLineShowsCountsAndRates) {
  ProgressReporter reporter(manual_options());
  reporter.add_planned(2);
  auto a = reporter.begin("corruption(sp)");
  a->cells.conflicts.store(640, std::memory_order_relaxed);
  a->cells.propagations.store(10000, std::memory_order_relaxed);
  a->cells.learned_clauses.store(12, std::memory_order_relaxed);
  auto b = reporter.begin("bypass(sp)");
  b->finish();
  reporter.tick();

  const std::string line = reporter.last_line();
  EXPECT_NE(line.find("1/2 done"), std::string::npos) << line;
  EXPECT_NE(line.find("1 active"), std::string::npos) << line;
  EXPECT_NE(line.find("conf/s"), std::string::npos) << line;
  EXPECT_NE(line.find("prop/s"), std::string::npos) << line;
  EXPECT_NE(line.find("learned"), std::string::npos) << line;
  EXPECT_NE(line.find("elapsed"), std::string::npos) << line;
}

TEST(ProgressTest, StallRecordsAppendToRunReport) {
  ProgressReporter reporter(manual_options(/*stall_window=*/0.01));
  auto task = reporter.begin("corruption(sp)");
  task->cells.frames.store(3, std::memory_order_relaxed);
  reporter.tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  reporter.tick();
  ASSERT_EQ(reporter.stall_count(), 1u);

  RunReport report;
  append_stall_records(report, reporter);
  ASSERT_EQ(report.size(), 1u);
  const std::string jsonl = report.to_jsonl(/*include_timing=*/true);
  EXPECT_NE(jsonl.find("\"type\":\"stall\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"property\":\"corruption(sp)\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"at_frame\":3"), std::string::npos);
  // The duration and key are timing fields: stripped in the invariance form.
  const std::string stripped = report.to_jsonl(/*include_timing=*/false);
  EXPECT_EQ(stripped.find("stalled_seconds"), std::string::npos);
  EXPECT_EQ(stripped.find("progress_key"), std::string::npos);
}

TEST(ProgressTest, SolverPublishesProgressCells) {
  const designs::Design design = designs::build_clean("mc8051");
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames = 4;
  options.scan_pseudo_critical = false;
  options.check_bypass = false;

  ObligationProgress cells;
  options.engine.progress = &cells;
  core::TrojanDetector detector(design, options);
  const core::CheckResult result =
      detector.check_corruption(design.critical_registers.front());

  // The final publication makes the cells agree with the run's counters.
  EXPECT_EQ(cells.frames.load(std::memory_order_relaxed),
            result.frames_completed);
  EXPECT_EQ(cells.conflicts.load(std::memory_order_relaxed),
            result.counters.sat.conflicts);
  EXPECT_EQ(cells.propagations.load(std::memory_order_relaxed),
            result.counters.sat.propagations);
  EXPECT_GT(cells.key(), 0u);
}

TEST(ProgressTest, ParallelAuditWithReporterFinishesAllObligations) {
  ProgressReporter reporter(manual_options());
  ProgressReporter::set_global(&reporter);

  const designs::Design design = designs::build_clean("mc8051");
  core::ParallelDetectorOptions options;
  options.detector.engine.kind = core::EngineKind::kBmc;
  options.detector.engine.max_frames = 3;
  options.jobs = 2;
  core::ParallelDetector detector(design, options);
  const core::DetectionReport report = detector.run();
  ProgressReporter::set_global(nullptr);
  reporter.tick();

  const auto agg = reporter.aggregate();
  EXPECT_EQ(agg.planned, report.runs.size());
  EXPECT_EQ(agg.done, agg.started);
  EXPECT_EQ(agg.active, 0u);
  EXPECT_GT(agg.done, 0u);
  EXPECT_GT(agg.propagations, 0u);
  EXPECT_EQ(reporter.stall_count(), 0u);
}

}  // namespace
}  // namespace trojanscout::telemetry
