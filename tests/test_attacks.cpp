// Section 4 attack tests: the pseudo-critical and bypass register attacks
// evade the Eq. 2 check (that is their point) and are exposed by the Eq. 3
// pseudo-critical monitor and the Eq. 4 fork miter respectively. Also tests
// the no-false-positive direction on clean designs.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "designs/attacks.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "netlist/wordops.hpp"
#include "properties/miter.hpp"
#include "properties/monitors.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::core {
namespace {

using designs::Design;

DetectorOptions bmc_budget(std::size_t frames) {
  DetectorOptions options;
  options.engine.kind = EngineKind::kBmc;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = 60.0;
  options.scan_pseudo_critical = false;
  options.check_bypass = false;
  return options;
}

Design pseudo_attacked_mc8051() {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  options.payload_enabled = false;  // transformer supplies the payload
  Design design = designs::build_mc8051(options);
  designs::plant_pseudo_critical(design, "sp");
  return design;
}

Design bypass_attacked_mc8051() {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  options.payload_enabled = false;
  Design design = designs::build_mc8051(options);
  designs::plant_bypass(design, "sp");
  return design;
}

TEST(PseudoCriticalAttack, EvadesTheCorruptionCheckOnTheCriticalRegister) {
  const Design design = pseudo_attacked_mc8051();
  TrojanDetector detector(design, bmc_budget(10));
  const CheckResult result = detector.check_corruption("sp");
  EXPECT_FALSE(result.violated)
      << "the attack corrupts the shadow register, never SP itself";
  EXPECT_TRUE(result.bound_reached);
}

TEST(PseudoCriticalAttack, Eq3MonitorExposesTheCorruptedShadow) {
  const Design design = pseudo_attacked_mc8051();
  TrojanDetector detector(design, bmc_budget(10));
  const CheckResult result = detector.check_pseudo_pair(
      "sp", designs::pseudo_register_name("sp"),
      properties::PseudoPolarity::kIdentity, /*candidate_leads=*/false);
  ASSERT_TRUE(result.violated);
  // Replay: the shadow mirrors SP up to the violation, then deviates.
  const auto& witness = *result.witness;
  const auto sp_trace = sim::replay_register(design.nl, witness, "sp");
  const auto shadow_trace =
      sim::replay_register(design.nl, witness, designs::pseudo_register_name("sp"));
  // The monitor compares the shadow's latched value at cycle t (latched at
  // the end of t-1) against SP's value one cycle earlier.
  const std::size_t t = witness.violation_frame;
  ASSERT_GE(t, 2u);
  EXPECT_NE(shadow_trace[t - 1], sp_trace[t - 2])
      << "deviates at the violation";
}

TEST(PseudoCriticalAttack, FullDetectorScanFindsIt) {
  // The scan's minimum-violation-depth rule needs a multi-cycle trigger
  // (shallow deviations are indistinguishable from ordinary register
  // divergence), so this uses the T400 sequence trigger on the stack
  // pointer instead of the single-byte UART trigger.
  designs::Mc8051Options mc_options;
  mc_options.trojan = designs::Mc8051Trojan::kT400;
  mc_options.payload_enabled = false;
  Design design = designs::build_mc8051(mc_options);
  designs::plant_pseudo_critical(design, "sp");
  DetectorOptions options = bmc_budget(14);
  options.scan_pseudo_critical = true;
  TrojanDetector detector(design, options);
  const DetectionReport report = detector.run();
  ASSERT_TRUE(report.trojan_found) << report.summary();
  bool pseudo_finding = false;
  for (const auto& finding : report.findings) {
    if (finding.kind == FindingKind::kPseudoCritical &&
        finding.register_name == "sp") {
      pseudo_finding = true;
    }
  }
  EXPECT_TRUE(pseudo_finding) << report.summary();
}

TEST(PseudoCriticalCertification, FaithfulMirrorIsCertifiedNotFlagged) {
  // A handcrafted design with a genuine pseudo-critical register (identity
  // and complement polarities) and no Trojan: Eq. 3 must reach the bound.
  netlist::Netlist nl;
  const netlist::Word in = nl.add_input_port("in", 4);
  const netlist::Word r = netlist::w_make_register(nl, "r", 4, 0);
  netlist::w_connect(nl, r, in);
  const netlist::Word p = netlist::w_make_register(nl, "p", 4, 0);
  netlist::w_connect(nl, p, r);
  const netlist::Word q = netlist::w_make_register(nl, "q", 4, 0xF);
  netlist::w_connect(nl, q, netlist::w_not(nl, r));
  nl.add_output_port("out", p);

  {
    netlist::Netlist copy = nl;
    const auto bad = properties::build_pseudo_critical_monitor(
        copy, "r", "p", properties::PseudoPolarity::kIdentity, false);
    EngineOptions engine;
    engine.max_frames = 12;
    const CheckResult result = run_engine(copy, bad, engine);
    EXPECT_FALSE(result.violated);
    EXPECT_TRUE(result.bound_reached);
  }
  {
    netlist::Netlist copy = nl;
    const auto bad = properties::build_pseudo_critical_monitor(
        copy, "r", "q", properties::PseudoPolarity::kComplement, false);
    EngineOptions engine;
    engine.max_frames = 12;
    const CheckResult result = run_engine(copy, bad, engine);
    EXPECT_FALSE(result.violated) << "complement polarity must certify too";
  }
  {
    // Wrong polarity must be refuted.
    netlist::Netlist copy = nl;
    const auto bad = properties::build_pseudo_critical_monitor(
        copy, "r", "q", properties::PseudoPolarity::kIdentity, false);
    EngineOptions engine;
    engine.max_frames = 12;
    EXPECT_TRUE(run_engine(copy, bad, engine).violated);
  }
}

TEST(BypassAttack, EvadesTheCorruptionCheckOnTheCriticalRegister) {
  const Design design = bypass_attacked_mc8051();
  TrojanDetector detector(design, bmc_budget(10));
  const CheckResult result = detector.check_corruption("sp");
  EXPECT_FALSE(result.violated)
      << "the bypass register is corrupted, never SP itself";
}

TEST(BypassAttack, Eq4MiterExposesTheBypass) {
  const Design design = bypass_attacked_mc8051();
  TrojanDetector detector(design, bmc_budget(24));
  const CheckResult result = detector.check_bypass("sp");
  ASSERT_TRUE(result.violated) << result.status;
}

TEST(BypassAttack, CleanDesignPassesTheEq4Miter) {
  // The crucial no-false-positive direction: on the clean core, forcing ~SP
  // into one copy must always reach the outputs, so the miter's bad signal
  // is unreachable.
  const Design design = designs::build_clean("mc8051");
  TrojanDetector detector(design, bmc_budget(14));
  const CheckResult result = detector.check_bypass("sp");
  EXPECT_FALSE(result.violated);
  EXPECT_TRUE(result.bound_reached);
}

TEST(BypassAttack, CleanRiscPassesTheEq4MiterOnEepromData) {
  const Design design = designs::build_clean("risc");
  TrojanDetector detector(design, bmc_budget(14));
  const CheckResult result = detector.check_bypass("eeprom_data");
  EXPECT_FALSE(result.violated);
}

TEST(BypassAttack, RiscBypassOnEepromDataIsDetected) {
  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kT300;
  options.trigger_count = 2;
  options.payload_enabled = false;
  Design design = designs::build_risc(options);
  designs::plant_bypass(design, "eeprom_data");
  TrojanDetector detector(design, bmc_budget(40));
  const CheckResult result = detector.check_bypass("eeprom_data");
  EXPECT_TRUE(result.violated) << result.status;
}

TEST(Attacks, TransformersRequireAnExposedTrigger) {
  Design clean = designs::build_clean("mc8051");
  EXPECT_THROW(designs::plant_pseudo_critical(clean, "sp"),
               std::invalid_argument);
  EXPECT_THROW(designs::plant_bypass(clean, "sp"), std::invalid_argument);
}

TEST(Attacks, PseudoCandidatesHaveMatchingWidth) {
  const Design design = pseudo_attacked_mc8051();
  TrojanDetector detector(design, bmc_budget(4));
  const auto candidates = detector.pseudo_candidates("sp");
  const std::size_t width = design.nl.find_register("sp").dffs.size();
  bool has_shadow = false;
  for (const auto& name : candidates) {
    EXPECT_EQ(design.nl.find_register(name).dffs.size(), width);
    if (name == designs::pseudo_register_name("sp")) has_shadow = true;
  }
  EXPECT_TRUE(has_shadow);
}

}  // namespace
}  // namespace trojanscout::core
