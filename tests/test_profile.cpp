// Phase-attribution profiler: exact inclusive/exclusive math on hand-built
// span trees, cross-thread parent subtraction, the jobs-invariant JSON
// form, and the log2-µs histogram quantile estimator's edge cases.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace trojanscout::telemetry {
namespace {

TraceEvent begin(const std::string& name, std::uint64_t span_id,
                 std::uint64_t parent_id, int tid, std::uint64_t ts_us) {
  return {/*begin=*/true, name, span_id, parent_id, tid, ts_us};
}

TraceEvent end(const std::string& name, std::uint64_t span_id, int tid,
               std::uint64_t ts_us) {
  return {/*begin=*/false, name, span_id, 0, tid, ts_us};
}

const PhaseStats* find_phase(const std::vector<PhaseStats>& phases,
                             const std::string& name) {
  for (const auto& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

TEST(ProfileTest, ExactInclusiveExclusiveSingleThread) {
  // A [0,100] with children B [10,40] and C [50,90].
  const std::vector<TraceEvent> events = {
      begin("A", 1, 0, 1, 0),   begin("B", 2, 1, 1, 10),
      end("B", 2, 1, 40),       begin("C", 3, 1, 1, 50),
      end("C", 3, 1, 90),       end("A", 1, 1, 100),
  };
  const Profile profile = build_profile(events);
  ASSERT_EQ(profile.phases.size(), 3u);
  const PhaseStats* a = find_phase(profile.phases, "A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->inclusive_us, 100u);
  EXPECT_EQ(a->exclusive_us, 30u);  // 100 - 30 (B) - 40 (C)
  const PhaseStats* b = find_phase(profile.phases, "B");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->inclusive_us, 30u);
  EXPECT_EQ(b->exclusive_us, 30u);
  EXPECT_EQ(profile.wall_us, 100u);
  // Exclusive times telescope: one thread's spans sum to its busy time.
  EXPECT_EQ(profile.busy_us, 100u);
  EXPECT_EQ(profile.thread_count, 1u);
}

TEST(ProfileTest, RepeatedPhaseAccumulates) {
  const std::vector<TraceEvent> events = {
      begin("f", 1, 0, 1, 0),  end("f", 1, 1, 5),
      begin("f", 2, 0, 1, 10), end("f", 2, 1, 25),
  };
  const Profile profile = build_profile(events);
  const PhaseStats* f = find_phase(profile.phases, "f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->count, 2u);
  EXPECT_EQ(f->inclusive_us, 20u);
  EXPECT_EQ(f->exclusive_us, 20u);
}

TEST(ProfileTest, ObligationAttribution) {
  const std::vector<TraceEvent> events = {
      begin("obligation:corruption(sp)", 1, 0, 1, 0),
      begin("sat:solve", 2, 1, 1, 10),
      end("sat:solve", 2, 1, 60),
      end("obligation:corruption(sp)", 1, 1, 100),
      begin("report", 3, 0, 1, 100),
      end("report", 3, 1, 110),
  };
  const Profile profile = build_profile(events);
  ASSERT_EQ(profile.obligations.size(), 2u);
  // Sorted by name; "(unattributed)" first.
  EXPECT_EQ(profile.obligations[0].name, "(unattributed)");
  ASSERT_NE(find_phase(profile.obligations[0].phases, "report"), nullptr);
  const ObligationProfile& ob = profile.obligations[1];
  EXPECT_EQ(ob.name, "corruption(sp)");
  EXPECT_EQ(ob.total_us, 100u);
  const PhaseStats* solve = find_phase(ob.phases, "sat:solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->inclusive_us, 50u);
}

TEST(ProfileTest, CrossThreadChildChargesParent) {
  // The scheduler pattern: the main thread's audit span is blocked while a
  // worker runs the obligation under an explicit parent id. The worker's
  // time must count as the audit span's child, not double as exclusive.
  const std::vector<TraceEvent> events = {
      begin("audit", 1, 0, 1, 0),
      begin("obligation:x", 2, 1, 2, 10),
      end("obligation:x", 2, 2, 90),
      end("audit", 1, 1, 100),
  };
  const Profile profile = build_profile(events);
  const PhaseStats* audit = find_phase(profile.phases, "audit");
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(audit->exclusive_us, 20u);  // 100 - 80 run by the worker
  EXPECT_EQ(profile.busy_us, 100u);
  EXPECT_EQ(profile.thread_count, 2u);
}

TEST(ProfileTest, UnclosedSpanChargedToLatestTimestamp) {
  const std::vector<TraceEvent> events = {
      begin("a", 1, 0, 1, 0),
      begin("b", 2, 1, 1, 10),
      end("b", 2, 1, 30),
      // "a" never ends (snapshot mid-run); latest ts on tid 1 is 30.
  };
  const Profile profile = build_profile(events);
  const PhaseStats* a = find_phase(profile.phases, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->inclusive_us, 30u);
  EXPECT_EQ(a->exclusive_us, 10u);
}

TEST(ProfileTest, TimingStrippedJsonIsScheduleInvariant) {
  // Same span names/counts, different timings, thread ids, interleaving —
  // the include_timing=false document must be byte-identical.
  const std::vector<TraceEvent> run1 = {
      begin("audit", 1, 0, 1, 0),
      begin("obligation:x", 2, 1, 2, 10),
      end("obligation:x", 2, 2, 90),
      begin("obligation:y", 3, 1, 3, 20),
      end("obligation:y", 3, 3, 70),
      end("audit", 1, 1, 100),
  };
  const std::vector<TraceEvent> run2 = {
      begin("audit", 1, 0, 1, 0),
      begin("obligation:y", 5, 1, 2, 5),
      end("obligation:y", 5, 2, 400),
      begin("obligation:x", 9, 1, 2, 410),
      end("obligation:x", 9, 2, 500),
      end("audit", 1, 1, 600),
  };
  const std::string json1 = build_profile(run1).to_json(false);
  const std::string json2 = build_profile(run2).to_json(false);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(json1.find("_us"), std::string::npos);
  EXPECT_EQ(json1.find("_seconds"), std::string::npos);
  EXPECT_EQ(json1.find("threads"), std::string::npos);
  // The timed forms differ (different wall clocks).
  EXPECT_NE(build_profile(run1).to_json(true), build_profile(run2).to_json(true));
}

TEST(ProfileTest, BucketOfEdgeCases) {
  // Bucket b counts [2^(b-1), 2^b) µs; bucket 0 is < 1 µs.
  EXPECT_EQ(Registry::bucket_of(0.0), 0u);
  EXPECT_EQ(Registry::bucket_of(-1.0), 0u);
  EXPECT_EQ(Registry::bucket_of(0.5e-6), 0u);
  EXPECT_EQ(Registry::bucket_of(1e-6), 1u);
  // Power-of-two boundaries land in the next bucket (half-open intervals).
  EXPECT_EQ(Registry::bucket_of(2e-6), 2u);
  EXPECT_EQ(Registry::bucket_of(4e-6), 3u);
  EXPECT_EQ(Registry::bucket_of(3e-6), 2u);  // inside [2,4)
  EXPECT_EQ(Registry::bucket_of(1024e-6), 11u);
  // Saturation: durations beyond the top bound stay in the last bucket
  // (2^38 µs ≈ 76 hours, so nothing real saturates).
  EXPECT_EQ(Registry::bucket_of(1e9), Registry::kHistogramBuckets - 1);
}

TEST(ProfileTest, HistogramQuantileEdgeCases) {
  Registry::HistogramValue hist;
  // Empty histogram -> 0 for any quantile.
  EXPECT_EQ(histogram_quantile(hist, 0.5), 0.0);

  // A single sample: every quantile is that sample.
  hist.count = 1;
  hist.min_seconds = 3e-6;
  hist.max_seconds = 3e-6;
  hist.buckets[Registry::bucket_of(3e-6)] = 1;
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.0), 3e-6);
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.5), 3e-6);
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 1.0), 3e-6);

  // Two widely separated samples: the median stays within [min, max] and
  // the extremes clamp to the observed bounds exactly.
  Registry::HistogramValue two;
  two.count = 2;
  two.min_seconds = 1e-6;
  two.max_seconds = 1000e-6;
  two.buckets[Registry::bucket_of(1e-6)] = 1;
  two.buckets[Registry::bucket_of(1000e-6)] = 1;
  EXPECT_DOUBLE_EQ(histogram_quantile(two, 0.0), 1e-6);
  EXPECT_DOUBLE_EQ(histogram_quantile(two, 1.0), 1000e-6);
  const double median = histogram_quantile(two, 0.5);
  EXPECT_GE(median, two.min_seconds);
  EXPECT_LE(median, two.max_seconds);

  // All samples in one bucket: quantiles interpolate inside the bucket's
  // bounds and never escape [min, max].
  Registry::HistogramValue packed;
  packed.count = 100;
  packed.min_seconds = 5e-6;
  packed.max_seconds = 7e-6;
  packed.buckets[Registry::bucket_of(6e-6)] = 100;
  for (double q : {0.1, 0.5, 0.9}) {
    const double v = histogram_quantile(packed, q);
    EXPECT_GE(v, packed.min_seconds) << "q=" << q;
    EXPECT_LE(v, packed.max_seconds) << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(histogram_quantile(packed, 0.1), histogram_quantile(packed, 0.9));
}

TEST(ProfileTest, EndToEndDetectorProfileHasEnginePhases) {
  TraceRecorder recorder;
  TraceRecorder::set_global(&recorder);
  Registry::global().set_enabled(true);

  const designs::Design design = designs::build_clean("mc8051");
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames = 4;
  options.scan_pseudo_critical = false;
  options.check_bypass = false;
  core::TrojanDetector detector(design, options);
  (void)detector.run();

  TraceRecorder::set_global(nullptr);
  Registry::global().set_enabled(false);
  const Profile profile =
      build_profile(recorder, Registry::global().snapshot());
  Registry::global().reset();

  EXPECT_NE(find_phase(profile.phases, "engine:bmc"), nullptr);
  bool any_obligation = false;
  for (const auto& ob : profile.obligations) {
    any_obligation = any_obligation || ob.name.find("corruption") == 0;
  }
  EXPECT_TRUE(any_obligation);
  EXPECT_GT(profile.wall_us, 0u);
  EXPECT_GT(profile.busy_us, 0u);
}

}  // namespace
}  // namespace trojanscout::telemetry
