// Tests for the extensions beyond the paper's core: witness minimization
// and unbounded proofs via k-induction.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "core/detector.hpp"
#include "core/minimize.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "properties/monitors.hpp"
#include "sim/simulator.hpp"

namespace trojanscout {
namespace {

TEST(MinimizeWitness, ShrinksTheRiscTriggerToItsEssentials) {
  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kFig1StackPointer;
  options.trigger_count = 4;
  designs::Design design = designs::build_risc(options);
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("stack_pointer"),
      properties::CorruptionMonitorKind::kExact);

  bmc::BmcOptions bmc_options;
  bmc_options.max_frames = 40;
  const auto result = bmc::check_bad_signal(design.nl, bad, bmc_options);
  ASSERT_EQ(result.status, bmc::BmcStatus::kViolated);

  core::MinimizeStats stats;
  const sim::Witness minimized =
      core::minimize_witness(design.nl, bad, *result.witness, &stats);
  EXPECT_LE(stats.bits_after, stats.bits_before);
  EXPECT_GT(stats.simulations, 1u);

  // The minimized witness must still violate.
  sim::Simulator simulator(design.nl);
  for (std::size_t t = 0; t <= minimized.violation_frame; ++t) {
    simulator.set_inputs(minimized.frames[t].bits);
    simulator.eval();
    if (t == minimized.violation_frame) {
      EXPECT_TRUE(simulator.value(bad));
    }
    simulator.step();
  }
}

TEST(MinimizeWitness, RejectsNonViolatingWitness) {
  designs::Design design = designs::build_mc8051({});
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("sp"),
      properties::CorruptionMonitorKind::kExact);
  sim::Witness bogus;
  bogus.violation_frame = 1;
  bogus.frames.resize(2);
  for (auto& frame : bogus.frames) {
    frame.bits = util::BitVec(design.nl.num_inputs());
  }
  EXPECT_THROW(core::minimize_witness(design.nl, bad, bogus),
               std::invalid_argument);
}

TEST(Induction, CleanContractIsProvenForAllTime) {
  // The clean MC8051 stack pointer follows its spec from *every* state, so
  // the no-corruption property is 1-inductive: no reset-every-T-cycles
  // caveat needed (strengthens the paper's Section 3.2 protocol).
  designs::Design design = designs::build_mc8051({});
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("sp"),
      properties::CorruptionMonitorKind::kExact);
  const auto result = bmc::prove_by_induction(design.nl, bad);
  EXPECT_EQ(result.status, bmc::InductionStatus::kProven);
  EXPECT_GE(result.k_used, 1u);
}

TEST(Induction, TrojanYieldsABaseCounterexample) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT700;
  designs::Design design = designs::build_mc8051(options);
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("acc"),
      properties::CorruptionMonitorKind::kExact);
  bmc::InductionOptions induction;
  induction.max_k = 8;
  const auto result = bmc::prove_by_induction(design.nl, bad, induction);
  ASSERT_EQ(result.status, bmc::InductionStatus::kBaseViolated);
  EXPECT_TRUE(result.witness.has_value());
}

TEST(Induction, TimeBombIsNotInductivelyProvable) {
  // AES-T1200's property holds for astronomically long from reset, but an
  // adversarial (unreachable-from-reset-soon) state violates it, so plain
  // k-induction must honestly return kUnknown rather than kProven.
  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kT100;
  options.trigger_count = 50;
  designs::Design design = designs::build_risc(options);
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("program_counter"),
      properties::CorruptionMonitorKind::kExact);
  bmc::InductionOptions induction;
  induction.max_k = 3;
  induction.time_limit_seconds = 30;
  const auto result = bmc::prove_by_induction(design.nl, bad, induction);
  EXPECT_EQ(result.status, bmc::InductionStatus::kUnknown);
}

TEST(Induction, CleanRiscEepromRegistersAreInductive) {
  designs::Design design = designs::build_risc({});
  for (const char* reg : {"eeprom_data", "eeprom_address"}) {
    const auto bad = properties::build_corruption_monitor(
        design.nl, design.spec.at(reg),
        properties::CorruptionMonitorKind::kExact);
    const auto result = bmc::prove_by_induction(design.nl, bad);
    EXPECT_EQ(result.status, bmc::InductionStatus::kProven) << reg;
  }
}

}  // namespace
}  // namespace trojanscout
