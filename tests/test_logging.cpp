// Logging-macro semantics: the runtime level check must short-circuit
// before the format arguments are evaluated, level parsing must be total
// (unknown names fall back to info), and the level store must be safe to
// hammer from multiple threads (this file runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace trojanscout::util {
namespace {

// Restores the global level on scope exit so these tests don't leak a
// trace-level setting into the rest of the suite.
class LevelGuard {
 public:
  LevelGuard() : saved_(log_level()) {}
  ~LevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

int evaluations = 0;

int count_evaluation() {
  ++evaluations;
  return 42;
}

TEST(Logging, ArgumentsNotEvaluatedBelowRuntimeLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  evaluations = 0;
  TS_LOG_TRACE("value %d", count_evaluation());
  TS_LOG_DEBUG("value %d", count_evaluation());
  TS_LOG_INFO("value %d", count_evaluation());
  TS_LOG_WARN("value %d", count_evaluation());
  EXPECT_EQ(evaluations, 0) << "suppressed log evaluated its arguments";
}

TEST(Logging, ArgumentsEvaluatedAtOrAboveRuntimeLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::kTrace);
  evaluations = 0;
  TS_LOG_TRACE("trace fires at trace level: value %d", count_evaluation());
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, ParseLevelRoundTripsAllNames) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
}

TEST(Logging, ParseLevelFallsBackToInfo) {
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kInfo);  // case-sensitive
}

TEST(Logging, LevelOrderingMatchesSeverity) {
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kDebug));
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kTrace));
}

TEST(Logging, CompiledMaxLevelDefaultKeepsTrace) {
  // The compile-time floor defaults to 4 (trace): nothing is stripped
  // unless a build overrides TROJANSCOUT_LOG_COMPILED_MAX_LEVEL.
  static_assert(TROJANSCOUT_LOG_COMPILED_MAX_LEVEL >= 0);
  EXPECT_EQ(TROJANSCOUT_LOG_COMPILED_MAX_LEVEL, 4);
}

TEST(Logging, ConcurrentLevelChangesAndLoggingAreRaceFree) {
  // set_log_level / log_level / log_message from many threads at once —
  // run under TSan this pins down that the level store is atomic and the
  // sink has no shared mutable state.
  LevelGuard guard;
  set_log_level(LogLevel::kError);  // keep stderr quiet: nothing prints
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&go, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          set_log_level(LogLevel::kError);
        } else {
          TS_LOG_WARN("thread %d iteration %d", t, i);
          (void)log_level();
        }
      }
    });
  }
  go.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Logging, LogMessageFormatsDirectly) {
  // Direct sink call (bypasses the level filter): just exercise the printf
  // path, including basename-stripping of __FILE__.
  log_message(LogLevel::kError, "/some/dir/test_logging.cpp", 1,
              "direct sink call: %s %d", "ok", 7);
}

}  // namespace
}  // namespace trojanscout::util
