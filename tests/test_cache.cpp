// Verdict-cache tests: hit/miss/readonly semantics of the persistent
// content-addressed store, corruption tolerance (truncated, bit-flipped,
// and schema-mangled entries must read as misses — never abort an audit),
// deterministic LRU eviction, the obligation codec round trip, and the
// acceptance bar for the audit service PR: a warm ParallelDetector run over
// a cached design answers every obligation from disk (zero engine runs) and
// produces a DetectionReport signature plus a timing-stripped RunReport
// byte-identical to the cold run's.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "cache/verdict_cache.hpp"
#include "cache/verdict_codec.hpp"
#include "core/parallel_detector.hpp"
#include "core/telemetry_sink.hpp"
#include "designs/catalog.hpp"
#include "telemetry/run_report.hpp"
#include "util/rng.hpp"

namespace trojanscout::cache {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ts_cache_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

VerdictCache::Options cache_options(const std::string& dir,
                                    CacheMode mode = CacheMode::kReadWrite,
                                    std::uint64_t max_bytes = 0) {
  VerdictCache::Options options;
  options.dir = dir;
  options.mode = mode;
  options.max_bytes = max_bytes;
  return options;
}

TEST(VerdictCache, StoreThenLookupRoundTripsAcrossInstances) {
  TempDir dir;
  const std::string key(32, 'a');
  {
    VerdictCache cache(cache_options(dir.path));
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.store(key, "payload-1");
    const auto got = cache.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "payload-1");
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
  }
  // A second process (fresh instance over the same directory) sees it.
  VerdictCache reopened(cache_options(dir.path));
  EXPECT_EQ(reopened.entry_count(), 1u);
  const auto got = reopened.lookup(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-1");
}

TEST(VerdictCache, ReadOnlyServesHitsButNeverWrites) {
  TempDir dir;
  const std::string key(32, 'b');
  {
    VerdictCache writer(cache_options(dir.path));
    writer.store(key, "stored-by-writer");
  }
  VerdictCache ro(cache_options(dir.path, CacheMode::kReadOnly));
  const auto got = ro.lookup(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "stored-by-writer");
  ro.store(std::string(32, 'c'), "must-not-land");
  EXPECT_EQ(ro.stats().stores, 0u);
  EXPECT_FALSE(
      fs::exists(fs::path(dir.path) /
                 VerdictCache::entry_filename(std::string(32, 'c'))));
  // Read-only over a directory that does not exist: everything misses.
  VerdictCache absent(
      cache_options(dir.path + "/nonexistent", CacheMode::kReadOnly));
  EXPECT_FALSE(absent.lookup(key).has_value());
}

TEST(VerdictCache, OffModeMissesAndTouchesNothing) {
  TempDir dir;
  VerdictCache cache(cache_options(dir.path + "/off", CacheMode::kOff));
  cache.store(std::string(32, 'd'), "nope");
  EXPECT_FALSE(cache.lookup(std::string(32, 'd')).has_value());
  EXPECT_FALSE(fs::exists(dir.path + "/off"));
}

TEST(VerdictCache, TruncatedEntryIsSkippedNotFatal) {
  TempDir dir;
  const std::string key(32, 'e');
  VerdictCache cache(cache_options(dir.path));
  cache.store(key, "a payload long enough to truncate meaningfully");
  const std::string path =
      (fs::path(dir.path) / VerdictCache::entry_filename(key)).string();
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text.substr(0, text.size() - 10);
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().corrupt_skipped, 1u);
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be unlinked in rw";
  // Dropped from the in-memory picture too.
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(VerdictCache, BitFlippedPayloadFailsTheChecksum) {
  TempDir dir;
  const std::string key(32, 'f');
  VerdictCache cache(cache_options(dir.path));
  cache.store(key, "checksummed payload bytes");
  const std::string path =
      (fs::path(dir.path) / VerdictCache::entry_filename(key)).string();
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  text[text.size() - 3] ^= 0x20;  // flip a bit inside the payload
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().corrupt_skipped, 1u);
}

TEST(VerdictCache, CorruptEntriesAreDroppedDuringIndexRebuild) {
  TempDir dir;
  const std::string good(32, '1');
  const std::string bad(32, '2');
  {
    VerdictCache cache(cache_options(dir.path));
    cache.store(good, "good payload");
    cache.store(bad, "bad payload");
  }
  // Mangle one entry and the index, forcing a scan on reopen.
  {
    std::ofstream os(fs::path(dir.path) / VerdictCache::entry_filename(bad),
                     std::ios::trunc);
    os << "not a cache entry at all";
  }
  {
    std::ofstream os(fs::path(dir.path) / "index.txt", std::ios::trunc);
    os << "garbage index";
  }
  VerdictCache reopened(cache_options(dir.path));
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_EQ(reopened.stats().corrupt_skipped, 1u);
  EXPECT_TRUE(reopened.lookup(good).has_value());
  EXPECT_FALSE(reopened.lookup(bad).has_value());
}

TEST(VerdictCache, EvictsLeastRecentlyUsedFirst) {
  TempDir dir;
  // Cap fits exactly two 10-byte payloads.
  VerdictCache cache(
      cache_options(dir.path, CacheMode::kReadWrite, /*max_bytes=*/20));
  const std::string k1(32, '1');
  const std::string k2(32, '2');
  const std::string k3(32, '3');
  cache.store(k1, "0123456789");
  cache.store(k2, "0123456789");
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.store(k3, "0123456789");
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_LE(cache.total_bytes(), 20u);
}

/// Codec + end-to-end fixture: one small catalog design, real obligations.
struct AuditFixture {
  AuditFixture() : design(designs::build_clean("mc8051")) {
    options.engine.kind = core::EngineKind::kBmc;
    options.engine.max_frames = 6;
    options.scan_pseudo_critical = true;
    options.check_bypass = true;
  }
  designs::Design design;
  core::DetectorOptions options;
};

TEST(VerdictCodec, RoundTripsVerdictsWitnessesAndCounters) {
  AuditFixture fx;
  core::TrojanDetector detector(fx.design, fx.options);
  const auto obligations = detector.enumerate_obligations();
  ASSERT_FALSE(obligations.empty());
  for (const auto& obligation : obligations) {
    const core::CheckResult result =
        detector.run_obligation(obligation, fx.options.engine);
    const std::string text =
        verdict_to_json(obligation, result, "certs/run1.json");
    core::CheckResult restored;
    std::string cert_ref;
    std::string error;
    ASSERT_TRUE(verdict_from_json(text, restored, &cert_ref, &error))
        << obligation.property_name() << ": " << error;
    EXPECT_EQ(cert_ref, "certs/run1.json");
    EXPECT_EQ(restored.violated, result.violated);
    EXPECT_EQ(restored.bound_reached, result.bound_reached);
    EXPECT_EQ(restored.frames_completed, result.frames_completed);
    EXPECT_EQ(restored.status, result.status);
    EXPECT_EQ(restored.witness.has_value(), result.witness.has_value());
    if (result.witness) {
      EXPECT_EQ(restored.witness->violation_frame,
                result.witness->violation_frame);
      ASSERT_EQ(restored.witness->frames.size(), result.witness->frames.size());
      for (std::size_t i = 0; i < result.witness->frames.size(); ++i) {
        EXPECT_EQ(restored.witness->frames[i].bits,
                  result.witness->frames[i].bits);
      }
    }
    EXPECT_EQ(restored.counters.sat.decisions, result.counters.sat.decisions);
    EXPECT_EQ(restored.counters.cnf_vars, result.counters.cnf_vars);
    EXPECT_EQ(restored.counters.frame_clauses, result.counters.frame_clauses);
    // Hits must cost nothing: wall clock and memory are not restored.
    EXPECT_EQ(restored.seconds, 0.0);
    EXPECT_EQ(restored.memory_bytes, 0u);
    EXPECT_FALSE(restored.cancelled);
  }
}

/// Property-based round trip: the codec must restore ANY deterministic
/// CheckResult payload bit-exactly, not just the ones the engines happen to
/// produce today. 64 seeded-random payloads sweep witness shapes (absent,
/// empty frames, ragged frame widths crossing the 64-bit word boundary) and
/// the full EngineCounters block, including the extremal u64 values JSON
/// codecs most often mangle.
TEST(VerdictCodec, RoundTripsRandomizedPayloads) {
  AuditFixture fx;
  core::TrojanDetector detector(fx.design, fx.options);
  const auto obligations = detector.enumerate_obligations();
  ASSERT_FALSE(obligations.empty());

  util::Xoshiro256 rng(20260808);
  // Counters ride the JSON int64 lane, so the codec's domain is
  // [0, 2^63): bias toward the boundaries JSON codecs most often mangle.
  const auto pick_u64 = [&rng]() -> std::uint64_t {
    switch (rng.next_below(6)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 0xffffffffull;
      case 3: return 0x100000000ull;
      case 4: return 0x7fffffffffffffffull;
      default: return rng.next() >> 1;
    }
  };

  for (int round = 0; round < 64; ++round) {
    const auto& obligation = obligations[rng.next_below(obligations.size())];
    core::CheckResult result;
    result.bound_reached = rng.next_below(2) != 0;
    result.frames_completed = static_cast<std::size_t>(rng.next_below(1000));
    result.seconds = 1.5;        // must NOT survive the round trip
    result.memory_bytes = 4096;  // must NOT survive the round trip
    result.status = "status-" + std::to_string(rng.next_below(1000));
    result.counters.sat.decisions = pick_u64();
    result.counters.sat.propagations = pick_u64();
    result.counters.sat.conflicts = pick_u64();
    result.counters.sat.restarts = pick_u64();
    result.counters.sat.learned_clauses = pick_u64();
    result.counters.sat.learned_literals = pick_u64();
    result.counters.sat.deleted_clauses = pick_u64();
    result.counters.sat.minimized_literals = pick_u64();
    result.counters.cnf_vars = static_cast<std::size_t>(rng.next_below(1u << 20));
    const std::size_t n_frames_clauses = rng.next_below(8);
    for (std::size_t i = 0; i < n_frames_clauses; ++i) {
      result.counters.frame_clauses.push_back(
          static_cast<std::uint32_t>(rng.next()));
    }
    result.counters.atpg_decisions = pick_u64();
    result.counters.atpg_backtracks = pick_u64();
    result.counters.atpg_implications = pick_u64();
    result.counters.atpg_frames_proven_clean =
        static_cast<std::size_t>(rng.next_below(64));
    result.counters.atpg_frames_aborted =
        static_cast<std::size_t>(rng.next_below(64));
    if (rng.next_below(2) != 0) {
      sim::Witness witness;
      const std::size_t frames = rng.next_below(5);
      for (std::size_t t = 0; t < frames; ++t) {
        // Widths straddle the word boundary (0..96 bits).
        util::BitVec bits(rng.next_below(97));
        for (std::size_t b = 0; b < bits.size(); ++b) {
          bits.set(b, rng.next_below(2) != 0);
        }
        witness.frames.push_back(sim::InputFrame{std::move(bits)});
      }
      witness.violation_frame =
          frames == 0 ? 0 : rng.next_below(frames);
      result.witness = std::move(witness);
    }
    // Codec invariant: a verdict is violated iff it carries a witness.
    result.violated = result.witness.has_value();

    const std::string cert_ref =
        rng.next_below(2) != 0 ? "certs/p" + std::to_string(round) : "";
    const std::string text = verdict_to_json(obligation, result, cert_ref);

    core::CheckResult restored;
    std::string restored_ref;
    std::string error;
    ASSERT_TRUE(verdict_from_json(text, restored, &restored_ref, &error))
        << "round " << round << ": " << error;
    EXPECT_EQ(restored_ref, cert_ref);
    EXPECT_EQ(restored.violated, result.violated);
    EXPECT_EQ(restored.bound_reached, result.bound_reached);
    EXPECT_EQ(restored.frames_completed, result.frames_completed);
    EXPECT_EQ(restored.status, result.status);
    EXPECT_EQ(restored.seconds, 0.0);
    EXPECT_EQ(restored.memory_bytes, 0u);
    EXPECT_FALSE(restored.cancelled);
    EXPECT_EQ(restored.counters.sat.decisions, result.counters.sat.decisions);
    EXPECT_EQ(restored.counters.sat.propagations,
              result.counters.sat.propagations);
    EXPECT_EQ(restored.counters.sat.conflicts, result.counters.sat.conflicts);
    EXPECT_EQ(restored.counters.sat.restarts, result.counters.sat.restarts);
    EXPECT_EQ(restored.counters.sat.learned_clauses,
              result.counters.sat.learned_clauses);
    EXPECT_EQ(restored.counters.sat.learned_literals,
              result.counters.sat.learned_literals);
    EXPECT_EQ(restored.counters.sat.deleted_clauses,
              result.counters.sat.deleted_clauses);
    EXPECT_EQ(restored.counters.sat.minimized_literals,
              result.counters.sat.minimized_literals);
    EXPECT_EQ(restored.counters.cnf_vars, result.counters.cnf_vars);
    EXPECT_EQ(restored.counters.frame_clauses, result.counters.frame_clauses);
    EXPECT_EQ(restored.counters.atpg_decisions,
              result.counters.atpg_decisions);
    EXPECT_EQ(restored.counters.atpg_backtracks,
              result.counters.atpg_backtracks);
    EXPECT_EQ(restored.counters.atpg_implications,
              result.counters.atpg_implications);
    EXPECT_EQ(restored.counters.atpg_frames_proven_clean,
              result.counters.atpg_frames_proven_clean);
    EXPECT_EQ(restored.counters.atpg_frames_aborted,
              result.counters.atpg_frames_aborted);
    ASSERT_EQ(restored.witness.has_value(), result.witness.has_value());
    if (result.witness) {
      EXPECT_EQ(restored.witness->violation_frame,
                result.witness->violation_frame);
      ASSERT_EQ(restored.witness->frames.size(),
                result.witness->frames.size());
      for (std::size_t t = 0; t < result.witness->frames.size(); ++t) {
        EXPECT_EQ(restored.witness->frames[t].bits,
                  result.witness->frames[t].bits);
      }
    }
  }
}

/// A disk cache can lose a tail of any length (torn write, full disk, power
/// cut); the strict parser must reject EVERY proper prefix of a valid
/// payload — no truncation point may read back as a (wrong) verdict.
TEST(VerdictCodec, RejectsEveryTruncationOfAValidPayload) {
  AuditFixture fx;
  core::TrojanDetector detector(fx.design, fx.options);
  const auto obligations = detector.enumerate_obligations();
  ASSERT_FALSE(obligations.empty());

  core::CheckResult result;
  result.violated = true;
  result.bound_reached = false;
  result.frames_completed = 7;
  result.status = "violation found";
  result.counters.sat.decisions = 123456;
  result.counters.cnf_vars = 4242;
  result.counters.frame_clauses = {10, 20, 30};
  sim::Witness witness;
  for (std::size_t t = 0; t < 3; ++t) {
    util::BitVec bits(40);
    bits.set(t, true);
    witness.frames.push_back(sim::InputFrame{std::move(bits)});
  }
  witness.violation_frame = 2;
  result.witness = std::move(witness);

  const std::string text =
      verdict_to_json(obligations[0], result, "certs/run.json");
  core::CheckResult parsed;
  std::string error;
  ASSERT_TRUE(verdict_from_json(text, parsed, nullptr, &error)) << error;

  for (std::size_t len = 0; len < text.size(); ++len) {
    core::CheckResult out;
    EXPECT_FALSE(verdict_from_json(text.substr(0, len), out, nullptr, &error))
        << "prefix of length " << len << " of " << text.size()
        << " parsed as a verdict";
  }
}

TEST(VerdictCodec, RejectsSchemaCorruptPayloadWithoutAborting) {
  core::CheckResult out;
  std::string error;
  EXPECT_FALSE(verdict_from_json("{\"format\":\"wrong\"}", out, nullptr,
                                 &error));
  EXPECT_FALSE(verdict_from_json("not json", out, nullptr, &error));
  EXPECT_FALSE(verdict_from_json("{}", out, nullptr, &error));
}

TEST(VerdictCodec, KeysSeparateConfigurationsAndObligations) {
  AuditFixture fx;
  core::TrojanDetector detector(fx.design, fx.options);
  const auto obligations = detector.enumerate_obligations();
  ASSERT_GE(obligations.size(), 2u);

  const ObligationKeyer keyer(fx.design, fx.options, /*fail_fast=*/false);
  EXPECT_EQ(keyer.key(obligations[0]).size(), 32u);
  EXPECT_EQ(keyer.key(obligations[0]), keyer.key(obligations[0]));
  EXPECT_NE(keyer.key(obligations[0]), keyer.key(obligations[1]));

  core::DetectorOptions deeper = fx.options;
  deeper.engine.max_frames += 1;
  EXPECT_NE(ObligationKeyer(fx.design, deeper, false).key(obligations[0]),
            keyer.key(obligations[0]));
  EXPECT_NE(ObligationKeyer(fx.design, fx.options, true).key(obligations[0]),
            keyer.key(obligations[0]));
}

/// The PR's acceptance bar: a warm re-audit of an unchanged design through
/// --cache-dir performs zero engine runs and reports identically.
TEST(VerdictCache, WarmAuditHitsEverythingAndMatchesColdReportByteForByte) {
  TempDir dir;
  AuditFixture fx;

  const auto run_audit = [&fx](VerdictCache& cache, std::string& jsonl) {
    AuditVerdictStore store(cache, fx.design, fx.options,
                            /*fail_fast=*/false);
    core::ParallelDetectorOptions options;
    options.detector = fx.options;
    options.jobs = 4;
    options.store = &store;
    core::ParallelDetector detector(fx.design, options);
    const core::DetectionReport report = detector.run();
    telemetry::RunReport metrics;
    core::append_detection_report(metrics, fx.design.name, "BMC", report);
    jsonl = metrics.to_jsonl(/*include_timing=*/false);
    return report.signature();
  };

  std::string cold_jsonl;
  std::string warm_jsonl;
  std::string cold_signature;
  std::string warm_signature;
  const std::size_t obligation_count =
      core::TrojanDetector(fx.design, fx.options)
          .enumerate_obligations()
          .size();
  {
    VerdictCache cache(cache_options(dir.path));
    cold_signature = run_audit(cache, cold_jsonl);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, obligation_count);
    EXPECT_EQ(cache.stats().stores, obligation_count);
  }
  {
    VerdictCache cache(cache_options(dir.path));
    warm_signature = run_audit(cache, warm_jsonl);
    EXPECT_EQ(cache.stats().hits, obligation_count)
        << "warm re-audit must answer every obligation from the cache";
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().stores, 0u);
  }
  EXPECT_EQ(warm_signature, cold_signature);
  EXPECT_EQ(warm_jsonl, cold_jsonl)
      << "timing-stripped warm report must be byte-identical to cold";
}

TEST(VerdictCache, AppendCacheRecordCarriesTheSchemaFields) {
  TempDir dir;
  VerdictCache cache(cache_options(dir.path));
  cache.store(std::string(32, 'a'), "x");
  cache.lookup(std::string(32, 'a'));
  cache.lookup(std::string(32, 'b'));
  telemetry::RunReport report;
  append_cache_record(report, cache);
  const std::string line = report.to_jsonl();
  EXPECT_NE(line.find("\"type\":\"cache\""), std::string::npos);
  EXPECT_NE(line.find("\"mode\":\"rw\""), std::string::npos);
  EXPECT_NE(line.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(line.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(line.find("\"stores\":1"), std::string::npos);
  EXPECT_NE(line.find("\"entries\":1"), std::string::npos);
}

}  // namespace
}  // namespace trojanscout::cache
