// ISA-level behavioural tests of the MC8051 and RISC cores, driven through
// the 2-valued simulator, including Trojan trigger/payload semantics.
#include <gtest/gtest.h>

#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::designs {
namespace {

// ---- MC8051 -----------------------------------------------------------------

class Mc8051Driver {
 public:
  explicit Mc8051Driver(const Design& design) : simulator_(design.nl) {
    simulator_.set_input_port("reset", 1);
    simulator_.step();
    simulator_.set_input_port("reset", 0);
  }

  /// Executes one instruction (fetch cycle + execute cycle).
  void run(std::uint8_t opcode, std::uint8_t operand = 0,
           std::uint8_t uart = 0, std::uint8_t xram = 0, bool irq = false) {
    simulator_.set_input_port("code_op", opcode);
    simulator_.set_input_port("code_operand", operand);
    simulator_.set_input_port("uart_rx", uart);
    simulator_.set_input_port("xram_in", xram);
    simulator_.set_input_port("int_req", irq ? 1 : 0);
    simulator_.step();  // fetch
    simulator_.step();  // execute
  }

  std::uint64_t reg(const std::string& name) {
    return simulator_.read_register(name);
  }
  std::uint64_t out(const std::string& name) {
    return simulator_.read_output(name);
  }

 private:
  sim::Simulator simulator_;
};

TEST(Mc8051, ResetState) {
  const Design d = build_mc8051({});
  Mc8051Driver cpu(d);
  EXPECT_EQ(cpu.reg("acc"), 0u);
  EXPECT_EQ(cpu.reg("sp"), 0x07u);
  EXPECT_EQ(cpu.reg("ie"), 0u);
}

TEST(Mc8051, MovAndAddSetAccAndCarry) {
  const Design d = build_mc8051({});
  Mc8051Driver cpu(d);
  cpu.run(0x74, 0x21);  // MOV A,#0x21
  EXPECT_EQ(cpu.reg("acc"), 0x21u);
  cpu.run(0x24, 0x05);  // ADD A,#5
  EXPECT_EQ(cpu.reg("acc"), 0x26u);
  cpu.run(0x24, 0xF0);  // ADD A,#0xF0 -> wraps, carry set
  EXPECT_EQ(cpu.reg("acc"), 0x16u);
  EXPECT_EQ(cpu.reg("psw_c"), 1u);
}

TEST(Mc8051, StackPointerWays) {
  const Design d = build_mc8051({});
  Mc8051Driver cpu(d);
  cpu.run(0x12, 0x34);  // LCALL
  EXPECT_EQ(cpu.reg("sp"), 0x08u);
  cpu.run(0x22);  // RET
  EXPECT_EQ(cpu.reg("sp"), 0x07u);
  cpu.run(0x75, 0x40);  // MOV SP,#0x40
  EXPECT_EQ(cpu.reg("sp"), 0x40u);
}

TEST(Mc8051, InterruptAckRequiresEnable) {
  const Design d = build_mc8051({});
  Mc8051Driver cpu(d);
  cpu.run(0x00, 0, 0, 0, /*irq=*/true);
  EXPECT_EQ(cpu.out("int_ack"), 0u);
  cpu.run(0xA8, 0x81);  // MOV IE,#0x81 (global + source enable)
  cpu.run(0x00, 0, 0, 0, /*irq=*/true);
  EXPECT_EQ(cpu.out("int_ack"), 1u);
}

TEST(Mc8051, T700PayloadZeroesMovOnMagicOperand) {
  Mc8051Options options;
  options.trojan = Mc8051Trojan::kT700;
  const Design d = build_mc8051(options);
  Mc8051Driver cpu(d);
  cpu.run(0x74, 0xCB);  // near-miss operand: normal behaviour
  EXPECT_EQ(cpu.reg("acc"), 0xCBu);
  cpu.run(0x74, 0xCA);  // trigger: data forced to 0x00
  EXPECT_EQ(cpu.reg("acc"), 0x00u);
  cpu.run(0x74, 0x55);  // trigger is per-instruction, not sticky
  EXPECT_EQ(cpu.reg("acc"), 0x55u);
}

TEST(Mc8051, T400SequenceClearsInterruptEnable) {
  Mc8051Options options;
  options.trojan = Mc8051Trojan::kT400;
  const Design d = build_mc8051(options);
  Mc8051Driver cpu(d);
  cpu.run(0xA8, 0xFF);  // MOV IE,#0xFF
  EXPECT_EQ(cpu.reg("ie"), 0xFFu);
  // Broken sequence: no effect.
  cpu.run(0x74, 0x00);
  cpu.run(0xE3);
  cpu.run(0x00);
  cpu.run(0xF3);
  EXPECT_EQ(cpu.reg("ie"), 0xFFu);
  // Exact sequence: IE cleared one instruction later (the trigger crosses
  // into the payload through a register, per the DeTrust structure).
  cpu.run(0x74, 0x00);
  cpu.run(0xE3);
  cpu.run(0xE0);
  cpu.run(0xF3);
  cpu.run(0x00);
  EXPECT_EQ(cpu.reg("ie"), 0x00u);
}

TEST(Mc8051, T800UartTriggerDropsStackPointerByTwo) {
  Mc8051Options options;
  options.trojan = Mc8051Trojan::kT800;
  const Design d = build_mc8051(options);
  Mc8051Driver cpu(d);
  EXPECT_EQ(cpu.reg("sp"), 0x07u);
  cpu.run(0x00, 0, /*uart=*/0xFF);  // 0xFF latched during fetch ...
  // ... so the payload hits while it sits in the buffer.
  EXPECT_LT(cpu.reg("sp"), 0x07u);
}

// ---- RISC ---------------------------------------------------------------------

class RiscDriver {
 public:
  explicit RiscDriver(const Design& design) : simulator_(design.nl) {
    simulator_.set_input_port("reset", 1);
    simulator_.step();
    simulator_.set_input_port("reset", 0);
    // Drain the bootstrap stall with two NOP machine cycles.
    feed(0x0000);
    feed(0x0000);
  }

  /// Presents `instruction` on the program bus for one 4-cycle machine
  /// cycle. The instruction is *fetched* during this window and *executes*
  /// during the next one (the core's fetch/execute overlap), so call
  /// sync() before inspecting its effects.
  void feed(std::uint16_t instruction) {
    simulator_.set_input_port("prog_data", instruction);
    for (int i = 0; i < 4; ++i) simulator_.step();
  }

  /// Lets the previously fed instruction complete (fetches a NOP).
  void sync() { feed(0x0000); }

  std::uint64_t reg(const std::string& name) {
    return simulator_.read_register(name);
  }

 private:
  sim::Simulator simulator_;
};

TEST(Risc, PcIncrementsOncePerInstruction) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.sync();
  const std::uint64_t pc0 = cpu.reg("program_counter");
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), pc0 + 1);
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), pc0 + 2);
}

TEST(Risc, MovlwAndAddlw) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.feed(0x3000 | 0x12);  // MOVLW 0x12
  cpu.sync();
  EXPECT_EQ(cpu.reg("w_register"), 0x12u);
  cpu.feed(0x1E00 | 0x03);  // ADDLW 3
  cpu.sync();
  EXPECT_EQ(cpu.reg("w_register"), 0x15u);
}

TEST(Risc, CallAndReturnRoundTripThroughStack) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.sync();
  const std::uint64_t pc_before = cpu.reg("program_counter");
  cpu.feed(0x2000 | 0x123);  // CALL 0x123
  cpu.sync();                 // CALL executes here (pushes pc_before + 1)
  EXPECT_EQ(cpu.reg("stack_pointer"), 1u);
  EXPECT_EQ(cpu.reg("program_counter"), 0x123u);
  cpu.sync();       // stalled slot after the jump
  cpu.feed(0x008);  // RETURN
  cpu.sync();
  EXPECT_EQ(cpu.reg("stack_pointer"), 0u);
  // The pushed return address is PC+1 at the cycle CALL executes; the slot
  // in which CALL was fetched already ran one more instruction, so the
  // round trip lands two past the pre-CALL PC.
  EXPECT_EQ(cpu.reg("program_counter"), pc_before + 2);
}

TEST(Risc, SleepInstructionSetsFlagAndHalts) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.feed(0x063);  // SLEEP
  cpu.sync();
  EXPECT_EQ(cpu.reg("sleep_flag"), 1u);
  const std::uint64_t pc = cpu.reg("program_counter");
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), pc) << "PC must hold while sleeping";
}

TEST(Risc, EepromRegistersFollowSpec) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  // MOVLW 0x5A; MOVWF 9 -> ram[9] = 0x5A -> eeprom_address follows.
  cpu.feed(0x3000 | 0x5A);
  cpu.feed(0x0100 | 0x9);
  cpu.sync();
  cpu.sync();
  EXPECT_EQ(cpu.reg("eeprom_address"), 0x5Au);
}

TEST(Risc, EepromDataLoadsOnlyOnReadStrobe) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.sync();
  EXPECT_EQ(cpu.reg("eeprom_data"), 0u);
  // Without EERD the data register ignores the EEPROM input bus entirely.
  cpu.sync();
  EXPECT_EQ(cpu.reg("eeprom_data"), 0u);
}

TEST(Risc, Fig1TrojanDropsStackPointerAfterNMatchingInstructions) {
  RiscOptions options;
  options.trojan = RiscTrojan::kFig1StackPointer;
  options.trigger_count = 3;
  const Design d = build_risc(options);
  RiscDriver cpu(d);
  EXPECT_EQ(cpu.reg("stack_pointer"), 0u);
  // ADDLW has instruction bits [13:10] = 0x7, inside the 0x4-0xB range.
  cpu.feed(0x1E00);
  cpu.feed(0x1E00);
  EXPECT_EQ(cpu.reg("stack_pointer"), 0u) << "not yet triggered";
  cpu.feed(0x1E00);  // third matching instruction: trigger fires
  cpu.sync();        // firing window (trigger is registered)
  cpu.sync();        // payload applies from the following window
  EXPECT_EQ(cpu.reg("stack_pointer"), (0ull - 2) & 0x7) << "SP -= 2 payload";
  cpu.sync();        // the sticky trigger keeps corrupting every window
  EXPECT_EQ(cpu.reg("stack_pointer"), (0ull - 4) & 0x7);
}

TEST(Risc, T100TrojanSkipsProgramCounter) {
  RiscOptions options;
  options.trojan = RiscTrojan::kT100;
  options.trigger_count = 2;
  const Design d = build_risc(options);
  RiscDriver cpu(d);
  cpu.feed(0x1E00);
  cpu.feed(0x1E00);
  cpu.sync();
  cpu.sync();  // triggered from here on
  const std::uint64_t pc = cpu.reg("program_counter");
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), pc + 2) << "PC += 2 payload";
}

}  // namespace
}  // namespace trojanscout::designs
