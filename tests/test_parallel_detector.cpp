// Parallel property scheduler tests: the ParallelDetector must produce a
// DetectionReport byte-identical (via DetectionReport::signature()) to the
// serial TrojanDetector on every catalog design for any jobs count, the
// cooperative cancellation flag must end engine runs promptly, and
// fail-fast mode must keep the triggering finding while marking the
// obligations it preempted as cancelled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "properties/monitors.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace trojanscout::core {
namespace {

DetectorOptions full_algorithm(std::size_t frames) {
  DetectorOptions options;
  options.engine.kind = EngineKind::kBmc;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = 60.0;
  options.scan_pseudo_critical = true;
  options.check_bypass = true;
  return options;
}

void expect_parallel_matches_serial(const designs::Design& design,
                                    const DetectorOptions& options) {
  TrojanDetector serial(design, options);
  const std::string expected = serial.run().signature();
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    ParallelDetectorOptions parallel_options;
    parallel_options.detector = options;
    parallel_options.jobs = jobs;
    ParallelDetector parallel(design, parallel_options);
    EXPECT_EQ(parallel.run().signature(), expected)
        << design.name << " diverged at jobs=" << jobs;
  }
}

TEST(ParallelDetector, MatchesSerialOnEveryCatalogTrojan) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;  // keep unit tests fast
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    SCOPED_TRACE(info.name);
    const designs::Design design = info.build(/*payload_enabled=*/true);
    const std::size_t frames = info.family == "aes" ? 4 : 8;
    expect_parallel_matches_serial(design, full_algorithm(frames));
  }
}

TEST(ParallelDetector, MatchesSerialOnCleanDesigns) {
  for (const char* family : {"mc8051", "risc", "aes", "router"}) {
    SCOPED_TRACE(family);
    const designs::Design design = designs::build_clean(family);
    const std::size_t frames = std::string(family) == "aes" ? 4 : 8;
    expect_parallel_matches_serial(design, full_algorithm(frames));
  }
}

TEST(ThreadPool, RunsEverySubmittedTaskAndIsReusable) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 500; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 500 * (wave + 1));
  }
}

TEST(ThreadPool, CancellationTokenIsSharedAcrossCopies) {
  util::CancellationToken token;
  const util::CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.flag()->load());
}

TEST(EngineCancellation, PreCancelledRunReturnsImmediately) {
  designs::Design design = designs::build_clean("mc8051");
  const auto bad = properties::build_corruption_monitor(
      design.nl, *design.spec.find("sp"),
      properties::CorruptionMonitorKind::kExact);
  std::atomic<bool> cancel{true};
  for (const EngineKind kind : {EngineKind::kBmc, EngineKind::kAtpg}) {
    EngineOptions options;
    options.kind = kind;
    options.max_frames = 1 << 20;
    options.time_limit_seconds = 600.0;
    options.cancel = &cancel;
    const CheckResult result = run_engine(design.nl, bad, options);
    EXPECT_TRUE(result.cancelled) << engine_name(kind);
    EXPECT_FALSE(result.violated) << engine_name(kind);
    EXPECT_EQ(result.status, "cancelled") << engine_name(kind);
  }
}

TEST(EngineCancellation, MidRunCancelEndsAnOpenEndedBmcRunPromptly) {
  designs::Design design = designs::build_clean("risc");
  const auto bad = properties::build_corruption_monitor(
      design.nl, *design.spec.find("stack_pointer"),
      properties::CorruptionMonitorKind::kExact);
  std::atomic<bool> cancel{false};
  EngineOptions options;
  options.max_frames = 1 << 20;  // would run for a very long time
  options.time_limit_seconds = 600.0;
  options.cancel = &cancel;

  CheckResult result;
  util::Stopwatch timer;
  std::thread runner([&] { result = run_engine(design.nl, bad, options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  cancel.store(true);
  runner.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.violated);
  // Polled at frame and conflict boundaries, so the reaction is prompt —
  // nowhere near the 600 s budget.
  EXPECT_LT(timer.elapsed_seconds(), 60.0);
}

TEST(ParallelDetector, FailFastCancelsOutstandingWorkButKeepsTheFinding) {
  designs::Mc8051Options mc_options;
  mc_options.trojan = designs::Mc8051Trojan::kT800;
  designs::Design design = designs::build_mc8051(mc_options);
  // Two obligations only: corruption(ie) would grind through a huge frame
  // bound on a clean register; corruption(sp) hits the T800 payload within
  // a few frames. Fail-fast must cancel the former once the latter lands.
  design.critical_registers = {"ie", "sp"};

  ParallelDetectorOptions options;
  options.detector.engine.kind = EngineKind::kBmc;
  options.detector.engine.max_frames = 1 << 16;
  options.detector.engine.time_limit_seconds = 600.0;
  options.detector.scan_pseudo_critical = false;
  options.detector.check_bypass = false;
  options.jobs = 2;
  options.fail_fast = true;

  ParallelDetector detector(design, options);
  util::Stopwatch timer;
  const DetectionReport report = detector.run();

  ASSERT_TRUE(report.trojan_found);
  ASSERT_EQ(report.runs.size(), 2u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].register_name, "sp");
  EXPECT_TRUE(report.findings[0].check.witness.has_value())
      << "the triggering finding must be fully retained";

  const PropertyRun* ie_run = nullptr;
  for (const auto& run : report.runs) {
    if (run.property == "corruption(ie)") ie_run = &run;
  }
  ASSERT_NE(ie_run, nullptr);
  EXPECT_TRUE(ie_run->check.cancelled);
  EXPECT_EQ(ie_run->check.status, "cancelled");
  EXPECT_FALSE(ie_run->check.witness.has_value());
  // The cancelled run's (arbitrary) abandonment frame must not drag down
  // the trust bound.
  EXPECT_EQ(report.trust_bound_frames, options.detector.engine.max_frames);
  // Without cancellation the ie check would burn the whole 600 s budget.
  EXPECT_LT(timer.elapsed_seconds(), 120.0);
}

}  // namespace
}  // namespace trojanscout::core
