// Simulator tests: 2-valued and 3-valued semantics, witness replay, and the
// VCD dump.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "netlist/wordops.hpp"
#include "sim/simulator.hpp"
#include "sim/ternary_simulator.hpp"
#include "sim/vcd.hpp"

namespace trojanscout::sim {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

TEST(Simulator, CombinationalGateSemantics) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId b = nl.add_input();
  const SignalId g_and = nl.b_and(a, b);
  const SignalId g_or = nl.b_or(a, b);
  const SignalId g_xor = nl.b_xor(a, b);
  const SignalId g_mux = nl.b_mux(a, b, nl.b_not(b));
  Simulator s(nl);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      s.set_input(a, va != 0);
      s.set_input(b, vb != 0);
      s.eval();
      EXPECT_EQ(s.value(g_and), (va & vb) != 0);
      EXPECT_EQ(s.value(g_or), (va | vb) != 0);
      EXPECT_EQ(s.value(g_xor), (va ^ vb) != 0);
      EXPECT_EQ(s.value(g_mux), (va != 0 ? vb : !vb) != 0);
    }
  }
}

TEST(Simulator, DffLatchesOnStepAndResets) {
  Netlist nl;
  const SignalId d = nl.add_input();
  const SignalId q = nl.add_dff(true);
  nl.connect_dff_input(q, d);
  Simulator s(nl);
  EXPECT_TRUE(s.value(q)) << "reset value";
  s.set_input(d, false);
  s.step();
  EXPECT_FALSE(s.value(q));
  s.set_input(d, true);
  s.eval();
  EXPECT_FALSE(s.value(q)) << "eval must not latch";
  s.step();
  EXPECT_TRUE(s.value(q));
  s.reset();
  EXPECT_TRUE(s.value(q));
}

TEST(Simulator, SimultaneousDffUpdate) {
  // Swap network: a <-> b must exchange values atomically on step.
  Netlist nl;
  const SignalId a = nl.add_dff(true);
  const SignalId b = nl.add_dff(false);
  nl.connect_dff_input(a, b);
  nl.connect_dff_input(b, a);
  Simulator s(nl);
  s.step();
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  s.step();
  EXPECT_TRUE(s.value(a));
  EXPECT_FALSE(s.value(b));
}

TEST(TernarySim, XPropagatesOnlyWhereItMatters) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId b = nl.add_input();
  const SignalId g_and = nl.b_and(a, b);
  const SignalId g_or = nl.b_or(a, b);
  TernarySimulator s(nl);
  s.set_input(a, Ternary::kZero);
  s.set_input(b, Ternary::kX);
  s.eval();
  EXPECT_EQ(s.value(g_and), Ternary::kZero) << "0 controls AND";
  EXPECT_EQ(s.value(g_or), Ternary::kX);
  s.set_input(a, Ternary::kOne);
  s.eval();
  EXPECT_EQ(s.value(g_and), Ternary::kX);
  EXPECT_EQ(s.value(g_or), Ternary::kOne) << "1 controls OR";
}

TEST(TernarySim, MuxWithUnknownSelectAgreeingBranches) {
  Netlist nl;
  const SignalId sel = nl.add_input();
  const SignalId t = nl.add_input();
  const SignalId f = nl.add_input();
  const SignalId m = nl.b_mux(sel, t, f);
  TernarySimulator s(nl);
  s.set_input(sel, Ternary::kX);
  s.set_input(t, Ternary::kOne);
  s.set_input(f, Ternary::kOne);
  s.eval();
  EXPECT_EQ(s.value(m), Ternary::kOne) << "agreeing branches resolve X select";
  s.set_input(f, Ternary::kZero);
  s.eval();
  EXPECT_EQ(s.value(m), Ternary::kX);
}

TEST(TernarySim, ResetToXMakesStateUnknown) {
  Netlist nl;
  const SignalId d = nl.add_input();
  const SignalId q = nl.add_dff(false);
  nl.connect_dff_input(q, d);
  TernarySimulator s(nl);
  EXPECT_EQ(s.value(q), Ternary::kZero);
  s.reset_to_x();
  EXPECT_EQ(s.value(q), Ternary::kX);
}

TEST(Witness, PortValueDecodesByInputIndex) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 8);
  const Word b = nl.add_input_port("b", 4);
  (void)a;
  (void)b;
  Witness w;
  InputFrame frame;
  frame.bits = util::BitVec(12);
  // a = 0xA5 (bits 0..7), b = 0x9 (bits 8..11).
  for (int i = 0; i < 8; ++i) frame.bits.set(i, (0xA5 >> i) & 1);
  for (int i = 0; i < 4; ++i) frame.bits.set(8 + i, (0x9 >> i) & 1);
  w.frames.push_back(frame);
  EXPECT_EQ(w.port_value(nl, "a", 0), 0xA5u);
  EXPECT_EQ(w.port_value(nl, "b", 0), 0x9u);
  const std::string text = w.to_string(nl);
  EXPECT_NE(text.find("a=0xa5"), std::string::npos);
}

TEST(Vcd, WritesAParsableHeaderAndValues) {
  Netlist nl;
  const SignalId en = nl.add_input_port("en", 1)[0];
  (void)en;
  const Word c = netlist::w_counter(nl, "c", 3, nl.input_port("en").bits[0]);
  nl.add_output_port("count", c);

  Witness w;
  for (int t = 0; t < 4; ++t) {
    InputFrame frame;
    frame.bits = util::BitVec(1);
    frame.bits.set(0, true);
    w.frames.push_back(frame);
  }
  const std::string path = "/tmp/trojanscout_test.vcd";
  ASSERT_TRUE(write_witness_vcd(nl, w, path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("reg_c"), std::string::npos);
  EXPECT_NE(text.find("in_en"), std::string::npos);
  EXPECT_NE(text.find("#30"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReplayRegister, TracksACounter) {
  Netlist nl;
  const SignalId en = nl.add_input_port("en", 1)[0];
  (void)en;
  netlist::w_counter(nl, "c", 4, nl.input_port("en").bits[0]);
  Witness w;
  for (int t = 0; t < 5; ++t) {
    InputFrame frame;
    frame.bits = util::BitVec(1);
    frame.bits.set(0, t != 2);  // skip one enable
    w.frames.push_back(frame);
  }
  const auto trace = replay_register(nl, w, "c");
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].to_uint(), 1u);
  EXPECT_EQ(trace[1].to_uint(), 2u);
  EXPECT_EQ(trace[2].to_uint(), 2u);
  EXPECT_EQ(trace[4].to_uint(), 4u);
}

}  // namespace
}  // namespace trojanscout::sim
