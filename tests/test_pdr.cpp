// IC3/PDR engine tests: violated designs produce replay-confirmed
// witnesses, provable designs converge to invariants that pass (and
// hand-mutated invariants fail) the independent check, and the engine
// agrees with deep-k BMC across the catalog and a pinned fuzz-corpus
// slice (PdrCrossCheck.* — the slow lane).
#include <gtest/gtest.h>

#include <atomic>

#include "bmc/bmc.hpp"
#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "fuzz/mutation.hpp"
#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "pdr/pdr.hpp"
#include "sim/witness.hpp"

namespace trojanscout {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

/// Bad fires when an n-bit counter of go-cycles reaches `target` (the same
/// design family the BMC/ATPG tests pin depths on).
struct CounterDut {
  Netlist nl;
  SignalId bad;
  CounterDut(unsigned width, unsigned target) {
    const SignalId go = nl.add_input_port("go", 1)[0];
    const Word count = netlist::w_counter(nl, "count", width, go);
    bad = nl.b_and(netlist::w_eq_const(nl, count, target), go);
    nl.add_output_port("bad", Word{bad});
  }
};

/// Two registers fed by the same input can never diverge; bad claims they
/// did. The inductive invariant is exactly "a == b".
struct EqualRegsDut {
  Netlist nl;
  SignalId bad;
  EqualRegsDut() {
    const SignalId in = nl.add_input_port("in", 1)[0];
    const SignalId a = nl.add_dff(false);
    const SignalId b = nl.add_dff(false);
    nl.connect_dff_input(a, in);
    nl.connect_dff_input(b, in);
    nl.add_register("a", Word{a});
    nl.add_register("b", Word{b});
    bad = nl.b_xor(a, b);
    nl.add_output_port("bad", Word{bad});
  }
};

/// A latch that can only ever keep its reset value 0 (x' = x AND in);
/// bad = x is unreachable and the invariant is the single clause ¬x.
struct StuckZeroDut {
  Netlist nl;
  SignalId bad;
  StuckZeroDut() {
    const SignalId in = nl.add_input_port("in", 1)[0];
    const SignalId x = nl.add_dff(false);
    nl.connect_dff_input(x, nl.b_and(x, in));
    nl.add_register("x", Word{x});
    bad = x;
    nl.add_output_port("bad", Word{bad});
  }
};

TEST(Pdr, FindsCounterTargetAndWitnessReplays) {
  CounterDut dut(4, 5);
  pdr::PdrOptions options;
  options.max_frames = 32;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, pdr::PdrStatus::kViolated);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_FALSE(result.invariant.has_value());
  const sim::ReplayVerdict replay =
      sim::replay_confirms(dut.nl, dut.bad, *result.witness);
  EXPECT_TRUE(replay.confirmed) << replay.detail;
  EXPECT_GT(result.counters.ctis, 0u);
}

TEST(Pdr, ProvesEqualRegistersInvariant) {
  EqualRegsDut dut;
  pdr::PdrOptions options;
  options.max_frames = 64;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, pdr::PdrStatus::kProven);
  EXPECT_EQ(result.status_name(), "proven-unbounded");
  EXPECT_EQ(result.frames_completed, options.max_frames);
  ASSERT_TRUE(result.invariant.has_value());
  EXPECT_FALSE(result.invariant->clauses.empty());
  const pdr::InvariantCheck check =
      pdr::check_invariant(dut.nl, dut.bad, *result.invariant);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(Pdr, ProvesStuckZeroLatch) {
  StuckZeroDut dut;
  pdr::PdrOptions options;
  options.max_frames = 64;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, pdr::PdrStatus::kProven);
  ASSERT_TRUE(result.invariant.has_value());
  const pdr::InvariantCheck check =
      pdr::check_invariant(dut.nl, dut.bad, *result.invariant);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(Pdr, RespectsBound) {
  CounterDut dut(6, 40);  // violation needs 41 frames
  pdr::PdrOptions options;
  options.max_frames = 10;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  EXPECT_EQ(result.status, pdr::PdrStatus::kBoundReached);
  EXPECT_EQ(result.frames_completed, 10u);
  EXPECT_FALSE(result.witness.has_value());
  EXPECT_FALSE(result.invariant.has_value());
}

TEST(Pdr, ViolationAtFrameZero) {
  // The reset state itself can raise bad (bad = input).
  Netlist nl;
  const SignalId in = nl.add_input_port("in", 1)[0];
  const SignalId x = nl.add_dff(false);
  nl.connect_dff_input(x, in);
  nl.add_register("x", Word{x});
  const SignalId bad = in;
  pdr::PdrOptions options;
  const pdr::PdrResult result = pdr::check_bad_signal(nl, bad, options);
  ASSERT_EQ(result.status, pdr::PdrStatus::kViolated);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->violation_frame, 0u);
  EXPECT_TRUE(sim::replay_confirms(nl, bad, *result.witness).confirmed);
}

TEST(Pdr, CancelFlagStopsTheRun) {
  CounterDut dut(8, 200);
  std::atomic<bool> cancel{true};
  pdr::PdrOptions options;
  options.max_frames = 4096;
  options.cancel = &cancel;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  EXPECT_EQ(result.status, pdr::PdrStatus::kResourceOut);
  EXPECT_TRUE(result.cancelled);
}

TEST(Pdr, DroppedClauseInvariantRejected) {
  StuckZeroDut dut;
  pdr::PdrOptions options;
  const pdr::PdrResult result =
      pdr::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, pdr::PdrStatus::kProven);
  ASSERT_TRUE(result.invariant.has_value());
  ASSERT_FALSE(result.invariant->clauses.empty());
  // Hand-mutate the proof: drop the first clause. The weakened invariant
  // no longer excludes the bad state and must be rejected.
  pdr::Invariant mutated = *result.invariant;
  mutated.clauses.erase(mutated.clauses.begin());
  const pdr::InvariantCheck check =
      pdr::check_invariant(dut.nl, dut.bad, mutated);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.detail.empty());
}

TEST(Pdr, ConsecutionFailureRejected) {
  // x' = in can become 1, so the clause ¬x is not inductive.
  Netlist nl;
  const SignalId in = nl.add_input_port("in", 1)[0];
  const SignalId x = nl.add_dff(false);
  nl.connect_dff_input(x, in);
  nl.add_register("x", Word{x});
  const SignalId bad = nl.b_and(x, in);
  pdr::Invariant claim;
  claim.clauses.push_back({-(static_cast<std::int32_t>(x) + 1)});
  const pdr::InvariantCheck check = pdr::check_invariant(nl, bad, claim);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.detail.find("consecution"), std::string::npos)
      << check.detail;
}

TEST(Pdr, InitiationFailureRejected) {
  // x resets to 1, so claiming ¬x breaks initiation.
  Netlist nl;
  const SignalId in = nl.add_input_port("in", 1)[0];
  const SignalId x = nl.add_dff(true);
  nl.connect_dff_input(x, nl.b_and(x, in));
  nl.add_register("x", Word{x});
  const SignalId bad = nl.b_and(nl.b_not(x), in);
  pdr::Invariant claim;
  claim.clauses.push_back({-(static_cast<std::int32_t>(x) + 1)});
  const pdr::InvariantCheck check = pdr::check_invariant(nl, bad, claim);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.detail.find("initiation"), std::string::npos)
      << check.detail;
}

TEST(Pdr, OutOfConeClauseRejected) {
  // y never feeds the monitor cone of bad, so clauses over it are invalid
  // evidence even when trivially true.
  StuckZeroDut dut;
  const SignalId y = dut.nl.add_dff(false);
  dut.nl.connect_dff_input(y, y);
  dut.nl.add_register("y", Word{y});
  pdr::Invariant claim;
  claim.clauses.push_back({-(static_cast<std::int32_t>(y) + 1)});
  const pdr::InvariantCheck check =
      pdr::check_invariant(dut.nl, dut.bad, claim);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.detail.find("cone"), std::string::npos) << check.detail;
}

// ---- slow lane: agreement with deep-k BMC ---------------------------------

struct CrossCheckCase {
  std::string label;
  Netlist nl;
  SignalId bad = netlist::kNullSignal;
  std::size_t frames = 16;
};

void expect_agreement(const CrossCheckCase& c) {
  bmc::BmcOptions bmc_options;
  bmc_options.max_frames = c.frames;
  bmc_options.time_limit_seconds = 60.0;
  const bmc::BmcResult b = bmc::check_bad_signal(c.nl, c.bad, bmc_options);

  pdr::PdrOptions pdr_options;
  pdr_options.max_frames = c.frames;
  pdr_options.time_limit_seconds = 60.0;
  const pdr::PdrResult p = pdr::check_bad_signal(c.nl, c.bad, pdr_options);

  if (b.status == bmc::BmcStatus::kResourceOut ||
      p.status == pdr::PdrStatus::kResourceOut) {
    GTEST_LOG_(INFO) << c.label << ": resource-out, agreement not checked";
    return;
  }
  const bool bmc_violated = b.status == bmc::BmcStatus::kViolated;
  const bool pdr_violated = p.status == pdr::PdrStatus::kViolated;
  // A violation inside BMC's bound must be visible to PDR (same bound);
  // PDR's obligation chains may also surface *deeper* counterexamples that
  // BMC's unrolling cannot reach, so the converse only holds when the PDR
  // trace fits inside the frames BMC actually cleared.
  if (bmc_violated) {
    EXPECT_TRUE(pdr_violated)
        << c.label << ": BMC violated but PDR says " << p.status_name();
  }
  if (pdr_violated) {
    ASSERT_TRUE(p.witness.has_value()) << c.label;
    EXPECT_TRUE(sim::replay_confirms(c.nl, c.bad, *p.witness).confirmed)
        << c.label;
    if (p.witness->violation_frame < b.frames_completed) {
      EXPECT_TRUE(bmc_violated)
          << c.label << ": PDR violation at frame "
          << p.witness->violation_frame << " inside BMC's "
          << b.frames_completed << " clean frames";
    }
  }
  if (p.status == pdr::PdrStatus::kProven) {
    EXPECT_FALSE(bmc_violated) << c.label << ": PDR proved a violated design";
    ASSERT_TRUE(p.invariant.has_value()) << c.label;
    EXPECT_TRUE(pdr::check_invariant(c.nl, c.bad, *p.invariant).ok)
        << c.label;
  }
}

std::vector<CrossCheckCase> corruption_cases(const designs::Design& design,
                                             std::size_t frames) {
  core::DetectorOptions options;
  core::TrojanDetector detector(design, options);
  std::vector<CrossCheckCase> cases;
  for (const core::Obligation& obligation : detector.enumerate_obligations()) {
    if (obligation.kind != core::Obligation::Kind::kCorruption) continue;
    auto instrumented = detector.instrument_obligation(obligation);
    CrossCheckCase c;
    c.label = design.name + "/" + obligation.property_name();
    c.nl = std::move(instrumented.nl);
    c.bad = instrumented.bad;
    c.frames = frames;
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(PdrCrossCheck, AgreesWithDeepBmcOnCatalog) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    const std::size_t frames = info.family == "aes" ? 4 : 16;
    const designs::Design design = info.build(/*payload_enabled=*/true);
    for (const auto& c : corruption_cases(design, frames)) {
      expect_agreement(c);
    }
  }
  for (const std::string family : {"mc8051", "risc", "router"}) {
    const designs::Design design = designs::build_clean(family);
    for (const auto& c : corruption_cases(design, 16)) {
      expect_agreement(c);
    }
  }
}

TEST(PdrCrossCheck, AgreesOnSeed42FuzzCorpusSlice) {
  fuzz::CorpusOptions corpus_options;
  corpus_options.seed = 42;
  corpus_options.count = 10;  // pinned prefix of the PR-6 corpus
  for (const fuzz::MutationSpec& spec :
       fuzz::generate_corpus(corpus_options)) {
    const fuzz::Mutant mutant = fuzz::build_mutant(spec);
    // Deep-enough bound to cover the known trigger depth, capped like the
    // fuzz harness caps its own frame budget.
    const std::size_t frames =
        std::min<std::size_t>(mutant.fire_depth + 6, 26);
    core::DetectorOptions options;
    core::TrojanDetector detector(mutant.design, options);
    for (const core::Obligation& obligation :
         detector.enumerate_obligations()) {
      if (obligation.kind != core::Obligation::Kind::kCorruption) continue;
      if (obligation.reg != mutant.spec.target) continue;
      auto instrumented = detector.instrument_obligation(obligation);
      CrossCheckCase c;
      c.label = spec.name();
      c.nl = std::move(instrumented.nl);
      c.bad = instrumented.bad;
      c.frames = frames;
      expect_agreement(c);
    }
  }
}

}  // namespace
}  // namespace trojanscout
