// Unit tests for the Trojan mutation fuzzer (src/fuzz): deterministic
// corpus generation, spec canonicalization, mutant construction, the
// differential harness's oracles, and the shrinker. The heavier end-to-end
// sweep lives in the CI fuzz leg (`trojanscout_cli fuzz`); these tests keep
// the per-spec machinery honest at unit-test cost.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"
#include "fuzz/mutation.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::fuzz {
namespace {

std::vector<std::string> corpus_names(const CorpusOptions& options) {
  std::vector<std::string> names;
  for (const MutationSpec& spec : generate_corpus(options)) {
    names.push_back(spec.name());
  }
  return names;
}

TEST(Fuzz, GenerateCorpusIsDeterministic) {
  CorpusOptions options;
  options.seed = 42;
  options.count = 40;
  const auto first = corpus_names(options);
  const auto second = corpus_names(options);
  EXPECT_EQ(first, second);

  options.seed = 43;
  const auto other_seed = corpus_names(options);
  EXPECT_NE(first, other_seed);
}

TEST(Fuzz, CorpusWithSameSeedSharesAPrefixAcrossCounts) {
  CorpusOptions small;
  small.seed = 42;
  small.count = 12;
  CorpusOptions large = small;
  large.count = 48;

  const auto short_names = corpus_names(small);
  const auto long_names = corpus_names(large);
  ASSERT_EQ(short_names.size(), 12u);
  ASSERT_EQ(long_names.size(), 48u);
  EXPECT_TRUE(std::equal(short_names.begin(), short_names.end(),
                         long_names.begin()));
}

TEST(Fuzz, CorpusCoversFamiliesTriggersAndPayloadStyles) {
  CorpusOptions options;
  options.seed = 42;
  options.count = 100;
  const std::vector<MutationSpec> corpus = generate_corpus(options);

  std::vector<std::string> families;
  std::vector<TriggerKind> triggers;
  std::vector<PayloadStyle> payloads;
  for (const MutationSpec& spec : corpus) {
    families.push_back(spec.family);
    triggers.push_back(spec.trigger);
    payloads.push_back(spec.payload);
  }
  for (const char* family : {"mc8051", "risc", "router"}) {
    EXPECT_NE(std::find(families.begin(), families.end(), family),
              families.end())
        << "family " << family << " never drawn";
  }
  for (const TriggerKind kind :
       {TriggerKind::kCombinational, TriggerKind::kSequence,
        TriggerKind::kCounter}) {
    EXPECT_NE(std::find(triggers.begin(), triggers.end(), kind),
              triggers.end())
        << "trigger kind " << trigger_kind_name(kind) << " never drawn";
  }
  for (const PayloadStyle style :
       {PayloadStyle::kBitFlip, PayloadStyle::kStuckAt, PayloadStyle::kSwap,
        PayloadStyle::kDelayedWrite, PayloadStyle::kPseudoCritical,
        PayloadStyle::kBypass}) {
    EXPECT_NE(std::find(payloads.begin(), payloads.end(), style),
              payloads.end())
        << "payload style " << payload_style_name(style) << " never drawn";
  }
}

TEST(Fuzz, BuildMutantIsDeterministicAndCanonicalizationIsIdempotent) {
  MutationSpec spec;
  spec.family = "mc8051";
  spec.trigger = TriggerKind::kSequence;
  spec.trigger_width = 3;
  spec.sequence_length = 2;
  spec.pattern = 0x2b;
  spec.insertion_point = 5;
  spec.target = "acc";
  spec.payload = PayloadStyle::kBitFlip;
  spec.payload_param = 0x5;

  const Mutant a = build_mutant(spec);
  const Mutant b = build_mutant(spec);
  EXPECT_EQ(a.spec.name(), b.spec.name());
  EXPECT_EQ(a.fire_depth, b.fire_depth);
  EXPECT_EQ(a.design.nl.size(), b.design.nl.size());

  // Canonicalization must be a fixpoint: re-building from the canonical
  // spec reproduces the same mutant.
  const Mutant again = build_mutant(a.spec);
  EXPECT_EQ(again.spec.name(), a.spec.name());
  EXPECT_EQ(again.design.nl.size(), a.design.nl.size());
}

TEST(Fuzz, MutantMarksTrojanLogicAndCarriesActivation) {
  MutationSpec spec;
  spec.family = "router";
  spec.trigger = TriggerKind::kCounter;
  spec.trigger_width = 2;
  spec.sequence_length = 3;
  spec.pattern = 0x3;
  spec.target = "dest_reg";
  spec.payload = PayloadStyle::kStuckAt;
  spec.payload_param = 0xff;

  const Mutant mutant = build_mutant(spec);
  EXPECT_NE(mutant.design.trojan_trigger, netlist::kNullSignal);
  ASSERT_FALSE(mutant.design.trojan_gate_ranges.empty());
  EXPECT_TRUE(mutant.design.is_trojan_gate(mutant.design.trojan_trigger));
  ASSERT_EQ(mutant.activation.size(), mutant.fire_depth + 1);

  // The bundled activation sequence actually fires the sticky trigger at
  // the advertised depth — the harness's reachability oracle relies on it.
  sim::Simulator simulator(mutant.design.nl);
  simulator.reset();
  for (std::size_t frame = 0; frame < mutant.activation.size(); ++frame) {
    simulator.set_inputs(mutant.activation[frame].bits);
    simulator.eval();
    if (frame + 1 < mutant.activation.size()) {
      EXPECT_FALSE(simulator.value(mutant.design.trojan_trigger))
          << "trigger fired early at frame " << frame;
      simulator.step();
    }
  }
  EXPECT_TRUE(simulator.value(mutant.design.trojan_trigger))
      << "trigger did not fire at fire_depth " << mutant.fire_depth;
}

TEST(Fuzz, BuildMutantRejectsUnknownFamily) {
  MutationSpec spec;
  spec.family = "no-such-core";
  spec.target = "acc";
  EXPECT_THROW(build_mutant(spec), std::invalid_argument);
}

TEST(Fuzz, HarnessDetectsAReachableMutantWithConfirmedWitness) {
  MutationSpec spec;
  spec.family = "mc8051";
  spec.trigger = TriggerKind::kCombinational;
  spec.trigger_width = 2;
  spec.pattern = 0x3;
  spec.target = "acc";
  spec.payload = PayloadStyle::kBitFlip;
  spec.payload_param = 0x1;

  HarnessOptions options;
  options.jobs = 1;
  options.differential = false;  // keep the unit test to one detector pass
  options.check_clean = false;
  CorpusHarness harness(options);
  const VariantOutcome outcome = harness.run_variant(spec);
  EXPECT_TRUE(outcome.reachable);
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.witness_confirmed);
  EXPECT_FALSE(outcome.finding_property.empty());
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

TEST(Fuzz, DeepCounterTriggerIsUnreachableAndNotAFailure) {
  MutationSpec spec;
  spec.family = "mc8051";
  spec.trigger = TriggerKind::kCounter;
  spec.trigger_width = 2;
  spec.sequence_length = 200;  // far past the harness frame cap
  spec.pattern = 0x3;
  spec.target = "acc";
  spec.payload = PayloadStyle::kBitFlip;

  HarnessOptions options;
  options.jobs = 1;
  options.differential = false;
  options.check_clean = false;
  CorpusHarness harness(options);
  const VariantOutcome outcome = harness.run_variant(spec);
  EXPECT_TRUE(outcome.deep);
  EXPECT_FALSE(outcome.reachable);
  EXPECT_FALSE(outcome.detected);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

TEST(Fuzz, ShrinkReducesAnInjectedFailureToAMinimalSpec) {
  MutationSpec spec;
  spec.family = "mc8051";
  spec.trigger = TriggerKind::kSequence;
  spec.trigger_width = 4;
  spec.sequence_length = 3;
  spec.pattern = 0xabc;
  spec.insertion_point = 21;
  spec.target = "sp";
  spec.payload = PayloadStyle::kStuckAt;
  spec.payload_param = 0xde;

  HarnessOptions options;
  options.jobs = 1;
  options.differential = false;
  options.check_clean = false;
  options.inject_failure = [](const MutationSpec& candidate) {
    return candidate.payload == PayloadStyle::kStuckAt;
  };
  CorpusHarness harness(options);

  const VariantOutcome outcome = harness.run_variant(spec);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.failure.rfind("injected", 0), 0u) << outcome.failure;

  const MutationSpec shrunk = harness.shrink(spec);
  // The shrinker walks toward the simplest coordinates that still fail:
  // the injected predicate only pins the payload style, so everything else
  // collapses.
  EXPECT_EQ(shrunk.payload, PayloadStyle::kStuckAt);
  EXPECT_EQ(shrunk.trigger, TriggerKind::kCombinational);
  EXPECT_EQ(shrunk.trigger_width, 1u);
  EXPECT_EQ(shrunk.sequence_length, 1u);
  EXPECT_EQ(shrunk.insertion_point, 0u);
  // And the minimal spec still reproduces the failure.
  const VariantOutcome replay = harness.run_variant(shrunk);
  EXPECT_FALSE(replay.ok());
}

TEST(Fuzz, ShrinkReturnsPassingSpecUnchangedUpToCanonicalization) {
  MutationSpec spec;
  spec.family = "mc8051";
  spec.trigger = TriggerKind::kCombinational;
  spec.trigger_width = 2;
  spec.pattern = 0x3;
  spec.target = "acc";
  spec.payload = PayloadStyle::kBitFlip;
  spec.payload_param = 0x1;

  HarnessOptions options;
  options.jobs = 1;
  options.differential = false;
  options.check_clean = false;
  CorpusHarness harness(options);
  const MutationSpec unchanged = harness.shrink(spec);
  EXPECT_EQ(unchanged.name(), build_mutant(spec).spec.name());
}

}  // namespace
}  // namespace trojanscout::fuzz
