// Certificate layer tests: certify → check round trips on every catalog
// design (BMC and ATPG engines), deterministic JSON serialization that is
// byte-identical serial vs. parallel, and rejection of tampered
// certificates (forged outcomes, mutated witnesses, truncated proofs,
// wrong design).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "proof/certificate.hpp"
#include "proof/json.hpp"

namespace trojanscout::proof {
namespace {

CertifyOptions full_algorithm(std::size_t frames, core::EngineKind engine =
                                                      core::EngineKind::kBmc) {
  CertifyOptions options;
  options.detector.engine.kind = engine;
  options.detector.engine.max_frames = frames;
  options.detector.engine.time_limit_seconds = 120.0;
  options.detector.scan_pseudo_critical = true;
  options.detector.check_bypass = true;
  return options;
}

std::size_t frames_for(const std::string& family) {
  return family == "aes" ? 4 : 8;
}

void expect_round_trip(const designs::Design& design,
                       const CertifyOptions& options) {
  const Certificate cert = certify(design, options);

  // The certificate must stand on its own through serialization.
  const std::string text = certificate_to_json(cert).dump();
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::parse(text, parsed, &error)) << error;
  Certificate restored;
  ASSERT_TRUE(certificate_from_json(parsed, restored, &error)) << error;
  EXPECT_EQ(certificate_to_json(restored).dump(), text)
      << design.name << ": JSON round trip is not the identity";

  const CertificateCheckResult check = check_certificate(restored, design);
  EXPECT_TRUE(check.ok) << design.name << ": "
                        << (check.errors.empty() ? "?" : check.errors[0]);
  EXPECT_EQ(restored.report_signature, cert.report_signature);
}

TEST(Certificate, RoundTripsOnEveryCatalogTrojan) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;  // keep unit tests fast
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    SCOPED_TRACE(info.name);
    const designs::Design design = info.build(/*payload_enabled=*/true);
    const CertifyOptions options = full_algorithm(frames_for(info.family));
    // The certificate's claim must be exactly what a plain detector run
    // reports — certify() is Algorithm 1 plus evidence, not a variant.
    core::TrojanDetector detector(design, options.detector);
    const core::DetectionReport report = detector.run();
    const Certificate cert = certify(design, options);
    EXPECT_EQ(cert.report_signature, report.signature()) << info.name;
    EXPECT_EQ(cert.trojan_found, report.trojan_found) << info.name;
    expect_round_trip(design, options);
  }
}

TEST(Certificate, RoundTripsOnCleanDesignsWithCheckedCleanFrames) {
  for (const char* family : {"mc8051", "risc", "aes", "router"}) {
    SCOPED_TRACE(family);
    const designs::Design design = designs::build_clean(family);
    const CertifyOptions options = full_algorithm(frames_for(family));
    const Certificate cert = certify(design, options);
    EXPECT_FALSE(cert.trojan_found) << family;
    const CertificateCheckResult check = check_certificate(cert, design);
    EXPECT_TRUE(check.ok) << family << ": "
                          << (check.errors.empty() ? "?" : check.errors[0]);
    // A clean BMC audit is exactly where the DRAT evidence earns its keep:
    // every clean frame of every obligation must have been proof-checked.
    EXPECT_GT(check.drat_marks_checked, 0u) << family;
    EXPECT_EQ(check.unchecked_obligations, 0u) << family;
  }
}

TEST(Certificate, AtpgRunsRoundTripWithCleanFramesReportedUnchecked) {
  designs::CatalogOptions catalog_options;
  designs::Design design;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    if (info.name == "MC8051-T800") design = info.build(true);
  }
  ASSERT_FALSE(design.name.empty());
  CertifyOptions options = full_algorithm(8, core::EngineKind::kAtpg);
  options.detector.scan_pseudo_critical = false;
  const Certificate cert = certify(design, options);
  EXPECT_TRUE(cert.trojan_found);
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "?" : check.errors[0]);
  // ATPG answers carry no proof object; clean obligations are counted, not
  // silently trusted.
  EXPECT_EQ(check.drat_marks_checked, 0u);
  EXPECT_GT(check.witnesses_confirmed, 0u);
}

TEST(Certificate, SerialAndParallelCertifyAreByteIdentical) {
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    SCOPED_TRACE(info.name);
    const designs::Design design = info.build(/*payload_enabled=*/true);
    CertifyOptions options = full_algorithm(frames_for(info.family));
    const std::string serial = certificate_to_json(certify(design, options)).dump();
    options.jobs = 8;
    const std::string parallel =
        certificate_to_json(certify(design, options)).dump();
    EXPECT_EQ(parallel, serial) << info.name << " diverged at jobs=8";
  }
}

// ---- tamper rejection ------------------------------------------------------

designs::Design t800_design() {
  for (const auto& info : designs::trojan_benchmarks({})) {
    if (info.name == "MC8051-T800") return info.build(true);
  }
  ADD_FAILURE() << "MC8051-T800 missing from catalog";
  return {};
}

CertifyOptions t800_options() {
  CertifyOptions options = full_algorithm(8);
  options.detector.scan_pseudo_critical = false;  // 2 obligations, fast
  options.detector.check_bypass = true;
  return options;
}

TEST(CertificateTamper, ForgedCleanOutcomeIsRejected) {
  const designs::Design design = t800_design();
  Certificate cert = certify(design, t800_options());
  ASSERT_TRUE(cert.trojan_found);
  for (auto& record : cert.records) {
    if (!record.violated) continue;
    record.violated = false;
    record.bound_reached = true;
    record.status = "clean";
    record.witness.reset();
  }
  cert.trojan_found = false;
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_FALSE(check.ok);
}

TEST(CertificateTamper, MutatedWitnessBitsAreRejected) {
  const designs::Design design = t800_design();
  Certificate cert = certify(design, t800_options());
  bool mutated = false;
  for (auto& record : cert.records) {
    if (!record.witness.has_value() || record.witness->frames.empty()) continue;
    auto& bits = record.witness->frames.front().bits;
    if (bits.empty()) continue;
    bits.set(0, !bits.get(0));
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_FALSE(check.ok);
}

TEST(CertificateTamper, TruncatedDratMarksAreRejected) {
  const designs::Design design = t800_design();
  Certificate cert = certify(design, t800_options());
  bool mutated = false;
  for (auto& record : cert.records) {
    if (!record.drat.has_value() || record.drat->marks.empty()) continue;
    record.drat->marks.pop_back();
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_FALSE(check.ok);
}

TEST(CertificateTamper, OverstatedFrameCountIsRejected) {
  // Claiming more clean frames than the proof covers must fail: the forged
  // frames have no UnsatMark, so marks.size() != frames_completed.
  const designs::Design design = t800_design();
  Certificate cert = certify(design, t800_options());
  bool mutated = false;
  for (auto& record : cert.records) {
    if (!record.drat.has_value()) continue;
    record.frames_completed += 1;
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  cert.trust_bound_frames += 1;
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_FALSE(check.ok);
}

TEST(CertificateTamper, WrongDesignIsRejected) {
  const designs::Design design = t800_design();
  const Certificate cert = certify(design, t800_options());
  const designs::Design clean = designs::build_clean("mc8051");
  const CertificateCheckResult check = check_certificate(cert, clean);
  EXPECT_FALSE(check.ok);
}

TEST(CertificateTamper, CancelledRecordsAreNeverAccepted) {
  const designs::Design design = t800_design();
  Certificate cert = certify(design, t800_options());
  ASSERT_FALSE(cert.records.empty());
  cert.records.front().cancelled = true;
  cert.records.front().status = "cancelled";
  const CertificateCheckResult check = check_certificate(cert, design);
  EXPECT_FALSE(check.ok);
}

// ---- JSON / base64 building blocks ----------------------------------------

TEST(Json, ParseDumpsAreStableAndOrdered) {
  const std::string text =
      R"({"b":1,"a":[true,null,-3,"x\n\"y"],"c":{"nested":2.5}})";
  Json value;
  std::string error;
  ASSERT_TRUE(Json::parse(text, value, &error)) << error;
  EXPECT_EQ(value.dump(), text);  // insertion order preserved, not sorted
  Json reparsed;
  ASSERT_TRUE(Json::parse(value.dump_pretty(), reparsed, &error)) << error;
  EXPECT_EQ(reparsed.dump(), text);
}

TEST(Json, RejectsMalformedDocuments) {
  Json value;
  std::string error;
  EXPECT_FALSE(Json::parse("{", value, &error));
  EXPECT_FALSE(Json::parse("[1,]", value, &error));
  EXPECT_FALSE(Json::parse("{} trailing", value, &error));
  EXPECT_FALSE(Json::parse("\"unterminated", value, &error));
}

TEST(Base64, RoundTripsAllLengthsAndRejectsCorruption) {
  std::vector<std::uint8_t> data;
  for (int len = 0; len < 70; ++len) {
    const std::string encoded = base64_encode(data);
    std::vector<std::uint8_t> decoded;
    ASSERT_TRUE(base64_decode(encoded, decoded)) << "len " << len;
    EXPECT_EQ(decoded, data) << "len " << len;
    data.push_back(static_cast<std::uint8_t>(len * 37 + 11));
  }
  std::vector<std::uint8_t> decoded;
  EXPECT_FALSE(base64_decode("AB", decoded));      // bad padding
  EXPECT_FALSE(base64_decode("A===", decoded));    // bad padding
  EXPECT_FALSE(base64_decode("AA==AA==", decoded));  // data after padding
  EXPECT_FALSE(base64_decode("AAA!", decoded));    // alphabet violation
}

}  // namespace
}  // namespace trojanscout::proof
