#!/bin/sh
# Integration test for trojanscout_cli: generate a Trojaned core as Verilog,
# audit it against the shipped spec, and require the Trojan verdict (exit 2).
set -e
CLI="$1"
SPEC_DIR="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen --family=mc8051 --trojan=MC8051-T800 --out="$WORK/ip.v"
"$CLI" info --design="$WORK/ip.v" | grep -q "registers:.*sp"

set +e
"$CLI" check --design="$WORK/ip.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp --frames=16 --minimize --vcd="$WORK/w.vcd"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected Trojan verdict (2), got $CODE"; exit 1; }
[ -s "$WORK/w.vcd" ] || { echo "missing VCD"; exit 1; }

# Clean design must pass and be provable forever.
"$CLI" gen --family=mc8051 --out="$WORK/clean.v"
"$CLI" check --design="$WORK/clean.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp --frames=12
"$CLI" prove --design="$WORK/clean.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp | grep -q PROVEN
echo "cli demo OK"
