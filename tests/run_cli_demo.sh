#!/bin/sh
# Integration test for trojanscout_cli: generate a Trojaned core as Verilog,
# audit it against the shipped spec, and require the Trojan verdict (exit 2).
set -e
CLI="$1"
SPEC_DIR="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen --family=mc8051 --trojan=MC8051-T800 --out="$WORK/ip.v"
"$CLI" info --design="$WORK/ip.v" | grep -q "registers:.*sp"

set +e
"$CLI" check --design="$WORK/ip.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp --frames=16 --minimize --vcd="$WORK/w.vcd"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected Trojan verdict (2), got $CODE"; exit 1; }
[ -s "$WORK/w.vcd" ] || { echo "missing VCD"; exit 1; }

# Observability: the same audit with the span recorder, the metrics sink,
# and trace-level logging all enabled at once. Still exit 2 (Trojan), and
# the artifacts must carry the expected structure.
set +e
TROJANSCOUT_LOG=trace "$CLI" audit --design="$WORK/ip.v" \
  --spec="$SPEC_DIR/mc8051_sp.spec" --frames=16 --jobs=4 \
  --trace-out="$WORK/trace.json" --metrics-out="$WORK/metrics.jsonl" \
  2>"$WORK/audit.log"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected audit Trojan verdict (2), got $CODE"; exit 1; }
grep -q '"traceEvents"' "$WORK/trace.json" || { echo "trace missing traceEvents"; exit 1; }
grep -q '"name":"audit"' "$WORK/trace.json" || { echo "trace missing audit span"; exit 1; }
grep -q '"type":"summary"' "$WORK/metrics.jsonl" || { echo "metrics missing summary"; exit 1; }
grep -q '"type":"counters"' "$WORK/metrics.jsonl" || { echo "metrics missing counters"; exit 1; }
grep -q 'DEBUG' "$WORK/audit.log" || { echo "TROJANSCOUT_LOG=trace produced no debug logs"; exit 1; }
# The heartbeat is opt-in: no --progress, no [progress] bytes anywhere.
grep -q '\[progress\]' "$WORK/audit.log" && { echo "heartbeat output without --progress"; exit 1; }

# The same audit with the live heartbeat and the phase profiler on.
set +e
"$CLI" audit --design="$WORK/ip.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --frames=16 --jobs=2 --progress=0.2 \
  --profile-out="$WORK/profile.json" 2>"$WORK/progress.log"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected audit Trojan verdict (2), got $CODE"; exit 1; }
grep -q '\[progress\]' "$WORK/progress.log" || { echo "--progress produced no heartbeat"; exit 1; }
grep -q 'conf/s' "$WORK/progress.log" || { echo "heartbeat lacks solver rates"; exit 1; }
grep -q '"schema":"trojanscout-profile-v1"' "$WORK/profile.json" || { echo "bad profile schema"; exit 1; }
grep -q '"name":"sat:solve"' "$WORK/profile.json" || { echo "profile missing sat:solve phase"; exit 1; }

# Clean design must pass and be provable forever.
"$CLI" gen --family=mc8051 --out="$WORK/clean.v"
"$CLI" check --design="$WORK/clean.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp --frames=12
"$CLI" prove --design="$WORK/clean.v" --spec="$SPEC_DIR/mc8051_sp.spec" \
  --register=sp | grep -q PROVEN
echo "cli demo OK"
