// Netlist IR tests: builders, constant folding, structural hashing,
// topological ordering, cones, cloning, fanout redirection, and SCOAP.
#include <gtest/gtest.h>

#include "netlist/clone.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scoap.hpp"
#include "netlist/wordops.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::netlist {
namespace {

TEST(Netlist, ConstantsAreFixedSignals) {
  Netlist nl;
  EXPECT_EQ(nl.const0(), 0u);
  EXPECT_EQ(nl.const1(), 1u);
  EXPECT_EQ(nl.gate(nl.const0()).op, Op::kConst0);
  EXPECT_EQ(nl.gate(nl.const1()).op, Op::kConst1);
}

TEST(Netlist, ConstantFolding) {
  Netlist nl;
  const SignalId a = nl.add_input();
  EXPECT_EQ(nl.b_and(a, nl.const0()), nl.const0());
  EXPECT_EQ(nl.b_and(a, nl.const1()), a);
  EXPECT_EQ(nl.b_or(a, nl.const1()), nl.const1());
  EXPECT_EQ(nl.b_or(a, nl.const0()), a);
  EXPECT_EQ(nl.b_xor(a, a), nl.const0());
  EXPECT_EQ(nl.b_xor(a, nl.const0()), a);
  EXPECT_EQ(nl.b_not(nl.b_not(a)), a);
  EXPECT_EQ(nl.b_and(a, nl.b_not(a)), nl.const0());
  EXPECT_EQ(nl.b_or(a, nl.b_not(a)), nl.const1());
  EXPECT_EQ(nl.b_mux(nl.const1(), a, nl.const0()), a);
  EXPECT_EQ(nl.b_mux(a, nl.const1(), nl.const0()), a);
}

TEST(Netlist, StructuralHashingFoldsDuplicates) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId b = nl.add_input();
  EXPECT_EQ(nl.b_and(a, b), nl.b_and(b, a));  // commutative key
  EXPECT_EQ(nl.b_xor(a, b), nl.b_xor(a, b));
  const std::size_t before = nl.size();
  (void)nl.b_and(a, b);
  EXPECT_EQ(nl.size(), before) << "no new gate for a duplicate";
}

TEST(Netlist, TopoOrderPutsFaninsFirst) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId dff = nl.add_dff(false);
  const SignalId x = nl.b_xor(a, dff);
  nl.connect_dff_input(dff, x);  // sequential feedback is fine
  const auto order = nl.topo_order();
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[x]);
  EXPECT_LT(pos[dff], pos[x]);
}

TEST(Netlist, ValidateRejectsUnconnectedDff) {
  Netlist nl;
  nl.add_dff(false);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, DoubleConnectDffThrows) {
  Netlist nl;
  const SignalId dff = nl.add_dff(false);
  nl.connect_dff_input(dff, nl.const0());
  EXPECT_THROW(nl.connect_dff_input(dff, nl.const1()), std::runtime_error);
}

TEST(Netlist, FaninConeStopsAtState) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId dff = nl.add_dff(false);
  const SignalId inner = nl.b_and(a, nl.const1());  // folds to a
  const SignalId x = nl.b_or(inner, dff);
  nl.connect_dff_input(dff, x);
  const auto cone = nl.fanin_cone({x});
  // Cone contains x, a, dff — but does not walk through the dff's input.
  EXPECT_EQ(cone.size(), 3u);
}

TEST(Netlist, RedirectReadersRewritesFaninsAndPorts) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId b = nl.add_input();
  const SignalId g = nl.b_and(a, b);
  nl.add_output_port("o", Word{a});
  const SignalId replacement = nl.add_input();
  nl.redirect_readers(a, replacement, static_cast<SignalId>(nl.size()), {});
  EXPECT_EQ(nl.gate(g).fanin[0] == replacement ||
                nl.gate(g).fanin[1] == replacement,
            true);
  EXPECT_EQ(nl.output_port("o").bits[0], replacement);
}

// ---- word ops: parameterized behavioural sweep against uint64 math ---------

struct WordOpCase {
  std::size_t width;
  std::uint64_t a, b;
};

class WordOps : public ::testing::TestWithParam<WordOpCase> {};

TEST_P(WordOps, ArithmeticAndCompareMatchSoftware) {
  const auto param = GetParam();
  const std::uint64_t mask =
      param.width >= 64 ? ~0ull : (1ull << param.width) - 1;
  Netlist nl;
  const Word a = nl.add_input_port("a", param.width);
  const Word b = nl.add_input_port("b", param.width);
  nl.add_output_port("sum", w_add(nl, a, b));
  nl.add_output_port("diff", w_sub(nl, a, b));
  nl.add_output_port("inc", w_inc(nl, a));
  nl.add_output_port("dec", w_dec(nl, a));
  nl.add_output_port("eq", Word{w_eq(nl, a, b)});
  nl.add_output_port("lt", Word{w_ult(nl, a, b)});
  nl.add_output_port("band", w_and(nl, a, b));
  nl.add_output_port("bxor", w_xor(nl, a, b));
  nl.add_output_port("ror", Word{w_reduce_or(nl, a)});
  nl.add_output_port("rand_", Word{w_reduce_and(nl, a)});

  sim::Simulator simulator(nl);
  simulator.set_input_port("a", param.a);
  simulator.set_input_port("b", param.b);
  simulator.eval();
  const std::uint64_t av = param.a & mask;
  const std::uint64_t bv = param.b & mask;
  EXPECT_EQ(simulator.read_output("sum"), (av + bv) & mask);
  EXPECT_EQ(simulator.read_output("diff"), (av - bv) & mask);
  EXPECT_EQ(simulator.read_output("inc"), (av + 1) & mask);
  EXPECT_EQ(simulator.read_output("dec"), (av - 1) & mask);
  EXPECT_EQ(simulator.read_output("eq"), av == bv ? 1u : 0u);
  EXPECT_EQ(simulator.read_output("lt"), av < bv ? 1u : 0u);
  EXPECT_EQ(simulator.read_output("band"), av & bv);
  EXPECT_EQ(simulator.read_output("bxor"), av ^ bv);
  EXPECT_EQ(simulator.read_output("ror"), av != 0 ? 1u : 0u);
  EXPECT_EQ(simulator.read_output("rand_"), av == mask ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WordOps,
    ::testing::Values(WordOpCase{4, 0x5, 0xA}, WordOpCase{4, 0xF, 0x1},
                      WordOpCase{8, 0x80, 0x80}, WordOpCase{8, 0x00, 0xFF},
                      WordOpCase{13, 0x1FFF, 0x0001},
                      WordOpCase{16, 0x1234, 0xFEDC},
                      WordOpCase{16, 0xFFFF, 0xFFFF},
                      WordOpCase{32, 0xDEADBEEF, 0x12345678},
                      WordOpCase{1, 1, 0}, WordOpCase{1, 1, 1}));

TEST(WordOpsExtra, InRangeMatchesSoftware) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 4);
  nl.add_output_port("r", Word{w_in_range(nl, a, 0x4, 0xB)});
  sim::Simulator simulator(nl);
  for (unsigned v = 0; v < 16; ++v) {
    simulator.set_input_port("a", v);
    simulator.eval();
    EXPECT_EQ(simulator.read_output("r"), (v >= 4 && v <= 0xB) ? 1u : 0u)
        << "v=" << v;
  }
}

TEST(WordOpsExtra, CasePriorityOrder) {
  Netlist nl;
  const SignalId c0 = nl.add_input();
  const SignalId c1 = nl.add_input();
  std::vector<CaseEntry> entries = {{c0, w_const(nl, 1, 4)},
                                    {c1, w_const(nl, 2, 4)}};
  nl.add_output_port("o", w_case(nl, entries, w_const(nl, 7, 4)));
  sim::Simulator simulator(nl);
  auto eval = [&](bool v0, bool v1) {
    simulator.set_input(c0, v0);
    simulator.set_input(c1, v1);
    simulator.eval();
    return simulator.read_output("o");
  };
  EXPECT_EQ(eval(false, false), 7u);
  EXPECT_EQ(eval(false, true), 2u);
  EXPECT_EQ(eval(true, false), 1u);
  EXPECT_EQ(eval(true, true), 1u) << "earlier entry wins";
}

TEST(WordOpsExtra, RamReadsWhatWasWritten) {
  Netlist nl;
  const Word raddr = nl.add_input_port("raddr", 2);
  const Word waddr = nl.add_input_port("waddr", 2);
  const Word wdata = nl.add_input_port("wdata", 8);
  const SignalId we = nl.add_input_port("we", 1)[0];
  const auto ram = w_ram(nl, "m", 4, 8, raddr, waddr, wdata, we);
  nl.add_output_port("rdata", ram.read_data);

  sim::Simulator simulator(nl);
  simulator.set_input_port("waddr", 2);
  simulator.set_input_port("wdata", 0xAB);
  simulator.set_input_port("we", 1);
  simulator.step();
  simulator.set_input_port("we", 0);
  simulator.set_input_port("raddr", 2);
  simulator.eval();
  EXPECT_EQ(simulator.read_output("rdata"), 0xABu);
  simulator.set_input_port("raddr", 1);
  simulator.eval();
  EXPECT_EQ(simulator.read_output("rdata"), 0u);
}

// ---- clone ---------------------------------------------------------------------

TEST(Clone, BehaviouralEquivalenceOnACounter) {
  Netlist src;
  const SignalId en = src.add_input_port("en", 1)[0];
  const Word count = w_counter(src, "c", 4, en);
  src.add_output_port("count", count);

  Netlist dst;
  CloneOptions options;
  options.prefix = "x_";
  clone_netlist(src, dst, options);
  ASSERT_TRUE(dst.has_register("x_c"));

  sim::Simulator s1(src);
  sim::Simulator s2(dst);
  for (int t = 0; t < 10; ++t) {
    const bool enable = (t % 3) != 0;
    s1.set_input_port("en", enable);
    s2.set_input_port("en", enable);
    s1.step();
    s2.step();
    EXPECT_EQ(s1.read_register("c"), s2.read_register("x_c"));
  }
}

TEST(Clone, ReadOverridesSubstituteRegisterReads) {
  Netlist src;
  const Word in = src.add_input_port("in", 4);
  const Word r = w_make_register(src, "r", 4, 0);
  w_connect(src, r, in);
  src.add_output_port("o", r);

  Netlist dst;
  CloneOptions options;
  options.prefix = "y_";
  // Every read of r becomes constant 0xF.
  for (std::size_t i = 0; i < 4; ++i) {
    options.read_overrides[r[i]] = dst.const1();
  }
  clone_netlist(src, dst, options);
  sim::Simulator simulator(dst);
  simulator.set_input_port("in", 0x3);
  simulator.step();
  EXPECT_EQ(simulator.read_output("y_o"), 0xFu);
}

// ---- SCOAP --------------------------------------------------------------------

TEST(Scoap, BasicControllabilities) {
  Netlist nl;
  const SignalId a = nl.add_input();
  const SignalId b = nl.add_input();
  const SignalId g_and = nl.b_and(a, b);
  const SignalId g_or = nl.b_or(a, b);
  const auto scoap = compute_scoap(nl);
  EXPECT_EQ(scoap.cc0[a], 1u);
  EXPECT_EQ(scoap.cc1[a], 1u);
  // AND to 1 needs both inputs: cc1 = 1+1+1; to 0 needs one: cc0 = 1+1.
  EXPECT_EQ(scoap.cc1[g_and], 3u);
  EXPECT_EQ(scoap.cc0[g_and], 2u);
  EXPECT_EQ(scoap.cc0[g_or], 3u);
  EXPECT_EQ(scoap.cc1[g_or], 2u);
}

TEST(Scoap, WideComparatorIsHardToControl) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 16);
  const SignalId eq = w_eq_const(nl, a, 0xBEEF);
  const auto scoap = compute_scoap(nl);
  EXPECT_GT(scoap.cc1[eq], 16u) << "setting a 16-bit match is expensive";
  EXPECT_LT(scoap.cc0[eq], 5u) << "breaking the match is cheap";
}

TEST(Scoap, SequentialDepthAccumulates) {
  Netlist nl;
  const SignalId en = nl.add_input_port("en", 1)[0];
  const Word c = w_counter(nl, "c", 3, en);
  const SignalId top = c[2];
  const auto scoap = compute_scoap(nl);
  EXPECT_GT(scoap.cc1[top], scoap.cc1[c[0]])
      << "the MSB of a counter is harder to set than the LSB";
}

}  // namespace
}  // namespace trojanscout::netlist
