// Property-layer tests: monitor construction details (Eq. 2 variants, fresh
// elaboration), cone-of-influence reduction, and the select tree used by
// the hardened scanners.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "netlist/coi.hpp"
#include "netlist/wordops.hpp"
#include "properties/monitors.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::properties {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

/// Toy design: a 4-bit register with two valid ways (reset -> 0,
/// load -> data) and an optional out-of-spec backdoor increment.
struct ToyReg {
  Netlist nl;
  RegisterSpec spec;
  explicit ToyReg(bool with_backdoor) {
    const SignalId reset = nl.add_input_port("reset", 1)[0];
    const SignalId load = nl.add_input_port("load", 1)[0];
    const Word data = nl.add_input_port("data", 4);
    const SignalId magic = nl.add_input_port("magic", 1)[0];
    const Word reg = netlist::w_make_register(nl, "r", 4, 0);

    Word next = reg;
    next = netlist::w_mux(nl, load, data, next);
    next = netlist::w_mux(nl, reset, netlist::w_const(nl, 0, 4), next);
    if (with_backdoor) {
      next = netlist::w_mux(nl, magic, netlist::w_inc(nl, reg), next);
    }
    netlist::w_connect(nl, reg, next);
    nl.add_output_port("r_out", reg);

    spec.reg = "r";
    spec.ways.push_back(
        {"Reset=1", "Any", "0", reset, netlist::w_const(nl, 0, 4)});
    spec.ways.push_back({"Load=1", "Any", "data", load, data});
  }
};

TEST(CorruptionMonitor, CleanRegisterIsCertified) {
  ToyReg toy(false);
  const SignalId bad = build_corruption_monitor(
      toy.nl, toy.spec, CorruptionMonitorKind::kExact);
  bmc::BmcOptions options;
  options.max_frames = 12;
  const auto result = bmc::check_bad_signal(toy.nl, bad, options);
  EXPECT_EQ(result.status, bmc::BmcStatus::kBoundReached);
}

TEST(CorruptionMonitor, BackdoorIsFoundWithTheMagicInput) {
  ToyReg toy(true);
  const SignalId bad = build_corruption_monitor(
      toy.nl, toy.spec, CorruptionMonitorKind::kExact);
  bmc::BmcOptions options;
  options.max_frames = 12;
  const auto result = bmc::check_bad_signal(toy.nl, bad, options);
  ASSERT_EQ(result.status, bmc::BmcStatus::kViolated);
  const auto& witness = *result.witness;
  EXPECT_EQ(witness.port_value(toy.nl, "magic", witness.violation_frame), 1u);
}

TEST(CorruptionMonitor, HoldOnlyAlsoCatchesOutOfSpecUpdates) {
  // The backdoor fires with load=0 and reset=0, so even the literal Eq. (2)
  // reading catches it (contrast with value corruption during a valid way,
  // covered in test_detector).
  ToyReg toy(true);
  const SignalId bad = build_corruption_monitor(
      toy.nl, toy.spec, CorruptionMonitorKind::kHoldOnly);
  bmc::BmcOptions options;
  options.max_frames = 12;
  EXPECT_EQ(bmc::check_bad_signal(toy.nl, bad, options).status,
            bmc::BmcStatus::kViolated);
}

TEST(CorruptionMonitor, ElaboratesFreshGates) {
  // The monitor must not fold into the design (SVA-style elaboration):
  // building it twice yields distinct bad signals, and the netlist grows.
  ToyReg toy(false);
  const std::size_t before = toy.nl.size();
  const SignalId bad1 = build_corruption_monitor(
      toy.nl, toy.spec, CorruptionMonitorKind::kExact);
  const std::size_t middle = toy.nl.size();
  const SignalId bad2 = build_corruption_monitor(
      toy.nl, toy.spec, CorruptionMonitorKind::kExact);
  EXPECT_GT(middle, before);
  EXPECT_GT(toy.nl.size(), middle);
  EXPECT_NE(bad1, bad2);
  // And hashing is back on afterwards.
  EXPECT_TRUE(toy.nl.strash_enabled());
}

TEST(CorruptionMonitor, WidthMismatchInSpecThrows) {
  ToyReg toy(false);
  RegisterSpec broken = toy.spec;
  broken.ways[1].next_value.pop_back();
  EXPECT_THROW(build_corruption_monitor(toy.nl, broken,
                                        CorruptionMonitorKind::kExact),
               std::invalid_argument);
}

// ---- cone of influence --------------------------------------------------------

TEST(Coi, ExcludesLogicThatCannotReachTheRoot) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 8);
  const Word b = nl.add_input_port("b", 8);
  const Word ra = netlist::w_make_register(nl, "ra", 8, 0);
  netlist::w_connect(nl, ra, a);
  const Word rb = netlist::w_make_register(nl, "rb", 8, 0);
  netlist::w_connect(nl, rb, netlist::w_add(nl, rb, b));  // big unrelated cone
  const SignalId root = netlist::w_eq_const(nl, ra, 0x42);

  const auto cone = netlist::sequential_coi(nl, {root});
  EXPECT_TRUE(cone[root]);
  EXPECT_TRUE(cone[ra[0]]);
  EXPECT_TRUE(cone[a[0]]);
  EXPECT_FALSE(cone[rb[0]]) << "rb never feeds the root";
  EXPECT_FALSE(cone[b[0]]);
}

TEST(Coi, WalksThroughRegisterChains) {
  Netlist nl;
  const SignalId in = nl.add_input_port("in", 1)[0];
  const SignalId s1 = nl.add_dff(false);
  const SignalId s2 = nl.add_dff(false);
  nl.connect_dff_input(s1, in);
  nl.connect_dff_input(s2, s1);
  const auto cone = netlist::sequential_coi(nl, {s2});
  EXPECT_TRUE(cone[s1]);
  EXPECT_TRUE(cone[in]);
}

// ---- select tree -----------------------------------------------------------------

struct SelectTreeCase {
  std::size_t options;
  std::size_t width;
};

class SelectTree : public ::testing::TestWithParam<SelectTreeCase> {};

TEST_P(SelectTree, SelectsEveryOption) {
  const auto param = GetParam();
  std::size_t index_bits = 0;
  while ((1u << index_bits) < param.options) ++index_bits;
  if (index_bits == 0) index_bits = 1;

  Netlist nl;
  const Word index = nl.add_input_port("index", index_bits);
  std::vector<Word> options;
  for (std::size_t i = 0; i < param.options; ++i) {
    options.push_back(
        nl.add_input_port("opt" + std::to_string(i), param.width));
  }
  nl.add_output_port("out", netlist::w_select_tree(nl, index, options));

  sim::Simulator simulator(nl);
  for (std::size_t i = 0; i < param.options; ++i) {
    simulator.set_input_port("opt" + std::to_string(i),
                             (0x1111111111111111ull * (i + 1)));
  }
  for (std::size_t i = 0; i < (1u << index_bits); ++i) {
    simulator.set_input_port("index", i);
    simulator.eval();
    const std::uint64_t mask =
        param.width >= 64 ? ~0ull : (1ull << param.width) - 1;
    const std::uint64_t expected =
        i < param.options ? (0x1111111111111111ull * (i + 1)) & mask : 0;
    EXPECT_EQ(simulator.read_output("out"), expected) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SelectTree,
                         ::testing::Values(SelectTreeCase{2, 4},
                                           SelectTreeCase{3, 8},
                                           SelectTreeCase{16, 8},
                                           SelectTreeCase{5, 13},
                                           SelectTreeCase{32, 4}));

TEST(SelectTreeErrors, RejectsBadInputs) {
  Netlist nl;
  const Word index = nl.add_input_port("i", 2);
  EXPECT_THROW(netlist::w_select_tree(nl, index, {}), std::invalid_argument);
  std::vector<Word> mismatched = {netlist::w_const(nl, 0, 4),
                                  netlist::w_const(nl, 0, 5)};
  EXPECT_THROW(netlist::w_select_tree(nl, index, mismatched),
               std::invalid_argument);
}

}  // namespace
}  // namespace trojanscout::properties
