// Unroller-level tests: frame semantics, COI reduction effects on variable
// counts, free-initial-state mode, and error paths.
#include <gtest/gtest.h>

#include "cnf/unroller.hpp"
#include "netlist/wordops.hpp"
#include "sat/solver.hpp"

namespace trojanscout::cnf {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

TEST(Unroller, FrameZeroStateIsTheResetValue) {
  Netlist nl;
  const SignalId d = nl.add_input();
  const SignalId q = nl.add_dff(true);
  nl.connect_dff_input(q, d);

  sat::Solver solver;
  Unroller unroller(nl, solver);
  unroller.add_frame();
  // q@0 must be forced to 1: asserting ~q@0 is UNSAT.
  EXPECT_EQ(solver.solve({~unroller.lit_of(q, 0)}),
            sat::SolveResult::kUnsat);
  EXPECT_EQ(solver.solve({unroller.lit_of(q, 0)}), sat::SolveResult::kSat);
}

TEST(Unroller, StateChainsThroughFrames) {
  Netlist nl;
  const SignalId d = nl.add_input();
  const SignalId q = nl.add_dff(false);
  nl.connect_dff_input(q, d);

  sat::Solver solver;
  Unroller unroller(nl, solver);
  unroller.add_frame();
  unroller.add_frame();
  // q@1 == d@0: assuming d@0=1 and q@1=0 must be UNSAT.
  EXPECT_EQ(solver.solve({unroller.lit_of(d, 0), ~unroller.lit_of(q, 1)}),
            sat::SolveResult::kUnsat);
  EXPECT_EQ(solver.solve({unroller.lit_of(d, 0), unroller.lit_of(q, 1)}),
            sat::SolveResult::kSat);
}

TEST(Unroller, FreeInitialStateAllowsBothValues) {
  Netlist nl;
  const SignalId d = nl.add_input();
  const SignalId q = nl.add_dff(true);
  nl.connect_dff_input(q, d);

  sat::Solver solver;
  Unroller unroller(nl, solver, {}, /*free_initial_state=*/true);
  unroller.add_frame();
  EXPECT_EQ(solver.solve({unroller.lit_of(q, 0)}), sat::SolveResult::kSat);
  EXPECT_EQ(solver.solve({~unroller.lit_of(q, 0)}), sat::SolveResult::kSat);
}

TEST(Unroller, CoiReductionShrinksTheEncoding) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 8);
  const Word b = nl.add_input_port("b", 8);
  const Word ra = netlist::w_make_register(nl, "ra", 8, 0);
  netlist::w_connect(nl, ra, a);
  const Word rb = netlist::w_make_register(nl, "rb", 8, 0);
  netlist::w_connect(nl, rb, netlist::w_add(nl, rb, b));
  const SignalId bad = netlist::w_eq_const(nl, ra, 0x42);

  sat::Solver full_solver;
  Unroller full(nl, full_solver);
  full.add_frame();
  sat::Solver coi_solver;
  Unroller reduced(nl, coi_solver, {bad});
  reduced.add_frame();
  EXPECT_LT(reduced.vars_allocated(), full.vars_allocated());
  // Signals outside the cone have no literal.
  EXPECT_THROW((void)reduced.lit_of(rb[0], 0), std::logic_error);
  // Behaviour is intact: bad is satisfiable in one frame only via a = 0x42
  // ... wait, bad reads ra@0 (reset 0), so it is UNSAT at frame 0 and SAT
  // at frame 1 when a@0 = 0x42.
  EXPECT_EQ(coi_solver.solve({reduced.lit_of(bad, 0)}),
            sat::SolveResult::kUnsat);
  reduced.add_frame();
  EXPECT_EQ(coi_solver.solve({reduced.lit_of(bad, 1)}),
            sat::SolveResult::kSat);
}

TEST(Unroller, LitOfUnknownFrameThrows) {
  Netlist nl;
  const SignalId a = nl.add_input();
  sat::Solver solver;
  Unroller unroller(nl, solver);
  unroller.add_frame();
  EXPECT_THROW((void)unroller.lit_of(a, 3), std::out_of_range);
}

TEST(Unroller, UnconnectedDffIsRejectedAtFrameOne) {
  Netlist nl;
  (void)nl.add_dff(false);
  sat::Solver solver;
  Unroller unroller(nl, solver);
  unroller.add_frame();  // frame 0 uses the reset constant: fine
  EXPECT_THROW(unroller.add_frame(), std::runtime_error);
}

}  // namespace
}  // namespace trojanscout::cnf
