// AES tests: the software reference against FIPS-197, and the gate-level
// core bit-for-bit against the reference.
#include <gtest/gtest.h>

#include "designs/aes.hpp"
#include "designs/aes_ref.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"

namespace trojanscout::designs {
namespace {

TEST(AesRef, SboxKnownEntries) {
  const auto& sbox = aes_sbox();
  EXPECT_EQ(sbox[0x00], 0x63);
  EXPECT_EQ(sbox[0x01], 0x7c);
  EXPECT_EQ(sbox[0x53], 0xed);
  EXPECT_EQ(sbox[0xff], 0x16);
  EXPECT_EQ(sbox[0x10], 0xca);
}

TEST(AesRef, SboxIsABijection) {
  const auto& sbox = aes_sbox();
  std::array<int, 256> seen{};
  for (int x = 0; x < 256; ++x) seen[sbox[static_cast<std::size_t>(x)]]++;
  for (int y = 0; y < 256; ++y) EXPECT_EQ(seen[static_cast<std::size_t>(y)], 1);
}

TEST(AesRef, GfMulBasics) {
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xc1);  // FIPS-197 example
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xfe);
  EXPECT_EQ(gf_mul(0x00, 0x12), 0x00);
  EXPECT_EQ(gf_mul(0x01, 0xab), 0xab);
}

TEST(AesRef, Fips197Vector) {
  const AesBlock key = aes_block_from_hex("000102030405060708090a0b0c0d0e0f");
  const AesBlock pt = aes_block_from_hex("00112233445566778899aabbccddeeff");
  const AesBlock expected =
      aes_block_from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes_encrypt(pt, key), expected);
}

TEST(AesRef, Fips197AppendixBVector) {
  const AesBlock key = aes_block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const AesBlock pt = aes_block_from_hex("3243f6a8885a308d313198a2e0370734");
  const AesBlock expected =
      aes_block_from_hex("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(aes_encrypt(pt, key), expected);
}

TEST(AesRef, KeyExpansionFirstStep) {
  const AesBlock key = aes_block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto rk = aes_expand_key(key);
  // FIPS-197 Appendix A: w[4..7] = a0fafe17 88542cb1 23a33939 2a6c7605.
  const AesBlock expected =
      aes_block_from_hex("a0fafe1788542cb123a339392a6c7605");
  EXPECT_EQ(rk[1], expected);
}

// ---- gate-level core ---------------------------------------------------------

/// Drives one block through the netlist core; writes the ciphertext to *out
/// (out-parameter so gtest ASSERTs can be used inside).
void encrypt_on_core(const Design& design, const AesBlock& pt,
                     const AesBlock& key, AesBlock* out_block) {
  sim::Simulator simulator(design.nl);
  auto block_bits = [](const AesBlock& block) {
    util::BitVec bits(128);
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t i = 0; i < 8; ++i) {
        bits.set(8 * (15 - b) + i, ((block[b] >> i) & 1u) != 0);
      }
    }
    return bits;
  };

  simulator.set_input_port("reset", 1);
  simulator.step();
  simulator.set_input_port("reset", 0);
  simulator.set_input_port("load_key", 1);
  simulator.set_input_port("key_in", block_bits(key));
  simulator.step();
  simulator.set_input_port("load_key", 0);
  simulator.set_input_port("start", 1);
  simulator.set_input_port("plaintext", block_bits(pt));
  simulator.step();
  simulator.set_input_port("start", 0);
  int guard = 0;
  while (simulator.read_output("done") == 0) {
    simulator.step();
    ASSERT_LE(++guard, 20) << "core did not finish";
  }
  const util::BitVec ct = simulator.read_bits(
      design.nl.output_port("ciphertext").bits);
  AesBlock out{};
  for (std::size_t b = 0; b < 16; ++b) {
    for (std::size_t i = 0; i < 8; ++i) {
      if (ct.get(8 * (15 - b) + i)) {
        out[b] |= static_cast<std::uint8_t>(1u << i);
      }
    }
  }
  *out_block = out;
}

AesBlock encrypt_on_core_checked(const Design& design, const AesBlock& pt,
                                 const AesBlock& key) {
  AesBlock out{};
  encrypt_on_core(design, pt, key, &out);
  return out;
}

TEST(AesCore, MatchesReferenceOnFipsVector) {
  const Design design = build_aes({});
  const AesBlock key = aes_block_from_hex("000102030405060708090a0b0c0d0e0f");
  const AesBlock pt = aes_block_from_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(encrypt_on_core_checked(design, pt, key), aes_encrypt(pt, key));
}

TEST(AesCore, MatchesReferenceOnRandomBlocks) {
  const Design design = build_aes({});
  std::uint64_t seed = 0x1234;
  for (int round = 0; round < 4; ++round) {
    AesBlock key{};
    AesBlock pt{};
    for (auto& b : key) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::uint8_t>(seed >> 33);
    }
    for (auto& b : pt) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::uint8_t>(seed >> 33);
    }
    EXPECT_EQ(encrypt_on_core_checked(design, pt, key), aes_encrypt(pt, key));
  }
}

TEST(AesCore, TrojanT700CorruptsKeyOnTriggerPlaintext) {
  AesOptions options;
  options.trojan = AesTrojan::kT700;
  const Design design = build_aes(options);
  const AesBlock key = aes_block_from_hex("000102030405060708090a0b0c0d0e0f");
  const AesBlock trigger_pt = aes_block_from_hex(kAesT700Plaintext);

  sim::Simulator simulator(design.nl);
  auto set_block = [&](const char* port, const AesBlock& block) {
    util::BitVec bits(128);
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t i = 0; i < 8; ++i) {
        bits.set(8 * (15 - b) + i, ((block[b] >> i) & 1u) != 0);
      }
    }
    simulator.set_input_port(port, bits);
  };
  simulator.set_input_port("reset", 1);
  simulator.step();
  simulator.set_input_port("reset", 0);
  simulator.set_input_port("load_key", 1);
  set_block("key_in", key);
  simulator.step();
  simulator.set_input_port("load_key", 0);

  const util::BitVec key_before = simulator.read_register_bits("key_reg");
  set_block("plaintext", trigger_pt);
  simulator.set_input_port("start", 1);
  simulator.step();
  simulator.set_input_port("start", 0);
  // The DeTrust scan takes 16 cycles after the start.
  for (int i = 0; i < 20; ++i) simulator.step();
  const util::BitVec key_after = simulator.read_register_bits("key_reg");
  EXPECT_NE(key_before, key_after) << "trigger plaintext must corrupt the key";

  // A non-trigger plaintext must leave the key alone.
  const Design clean_run = build_aes(options);
  sim::Simulator sim2(clean_run.nl);
  sim2.set_input_port("reset", 1);
  sim2.step();
  sim2.set_input_port("reset", 0);
  sim2.set_input_port("load_key", 1);
  {
    util::BitVec bits(128);
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t i = 0; i < 8; ++i) {
        bits.set(8 * (15 - b) + i, ((key[b] >> i) & 1u) != 0);
      }
    }
    sim2.set_input_port("key_in", bits);
  }
  sim2.step();
  sim2.set_input_port("load_key", 0);
  const util::BitVec kb = sim2.read_register_bits("key_reg");
  sim2.set_input_port("start", 1);
  sim2.step();
  sim2.set_input_port("start", 0);
  for (int i = 0; i < 20; ++i) sim2.step();
  EXPECT_EQ(kb, sim2.read_register_bits("key_reg"));
}

}  // namespace
}  // namespace trojanscout::designs
