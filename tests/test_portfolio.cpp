// Portfolio race tests: the winner is picked by verdict strength + fixed
// engine priority (never arrival order), losers observe their cancel flag,
// and the winning verdict is byte-identical to the standalone engine run —
// so full-audit signatures match at any jobs count, cold or warm cache
// (PortfolioAudit.* — the slow lane).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include "cache/verdict_cache.hpp"
#include "cache/verdict_codec.hpp"
#include "core/engine.hpp"
#include "core/parallel_detector.hpp"
#include "designs/catalog.hpp"
#include "netlist/wordops.hpp"
#include "pdr/pdr.hpp"
#include "portfolio/portfolio.hpp"
#include "proof/certificate.hpp"

namespace trojanscout {
namespace {

using core::CheckResult;
using core::EngineKind;
using core::EngineOptions;
using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

struct CounterDut {
  Netlist nl;
  SignalId bad;
  CounterDut(unsigned width, unsigned target) {
    const SignalId go = nl.add_input_port("go", 1)[0];
    const Word count = netlist::w_counter(nl, "count", width, go);
    bad = nl.b_and(netlist::w_eq_const(nl, count, target), go);
    nl.add_output_port("bad", Word{bad});
  }
};

/// x' = x AND in from reset 0: bad = x is unreachable, and PDR proves it
/// in milliseconds while the bounded engines grind through max_frames.
struct StuckZeroDut {
  Netlist nl;
  SignalId bad;
  StuckZeroDut() {
    const SignalId in = nl.add_input_port("in", 1)[0];
    const SignalId x = nl.add_dff(false);
    nl.connect_dff_input(x, nl.b_and(x, in));
    nl.add_register("x", Word{x});
    bad = x;
    nl.add_output_port("bad", Word{bad});
  }
};

TEST(Portfolio, SingleEngineDispatchesPdr) {
  StuckZeroDut dut;
  EngineOptions options;
  options.kind = EngineKind::kPdr;
  options.max_frames = 64;
  const CheckResult result = core::run_engine(dut.nl, dut.bad, options);
  EXPECT_EQ(result.engine_used, EngineKind::kPdr);
  EXPECT_FALSE(result.violated);
  EXPECT_TRUE(result.proven_unbounded);
  EXPECT_TRUE(result.bound_reached);
  EXPECT_EQ(result.status, "proven-unbounded");
  EXPECT_EQ(result.frames_completed, options.max_frames);
  ASSERT_TRUE(result.invariant.has_value());
  EXPECT_TRUE(pdr::check_invariant(dut.nl, dut.bad, *result.invariant).ok);
  EXPECT_TRUE(result.portfolio.empty());
}

TEST(Portfolio, ViolatedRaceKeepsPriorityWinnerAndMatchesStandalone) {
  CounterDut dut(4, 5);
  EngineOptions options;
  options.kind = EngineKind::kPortfolio;
  options.max_frames = 32;
  const CheckResult raced = core::run_engine(dut.nl, dut.bad, options);
  // Both bounded engines find the violation; BMC outranks ATPG on the
  // fixed priority, so the winner never depends on arrival order.
  EXPECT_EQ(raced.engine_used, EngineKind::kBmc);
  EXPECT_TRUE(raced.violated);
  EXPECT_FALSE(raced.cancelled);

  const CheckResult alone =
      portfolio::run_single(dut.nl, dut.bad, options, EngineKind::kBmc);
  EXPECT_EQ(raced.status, alone.status);
  EXPECT_EQ(raced.frames_completed, alone.frames_completed);
  ASSERT_TRUE(raced.witness.has_value());
  ASSERT_TRUE(alone.witness.has_value());
  EXPECT_EQ(raced.witness->violation_frame, alone.witness->violation_frame);
  ASSERT_EQ(raced.witness->frames.size(), alone.witness->frames.size());
  for (std::size_t t = 0; t < raced.witness->frames.size(); ++t) {
    EXPECT_EQ(raced.witness->frames[t].bits.to_binary_string(),
              alone.witness->frames[t].bits.to_binary_string());
  }

  ASSERT_EQ(raced.portfolio.size(), 3u);
  std::size_t winners = 0;
  for (const core::PortfolioOutcome& outcome : raced.portfolio) {
    if (outcome.won) ++winners;
  }
  EXPECT_EQ(winners, 1u);
  EXPECT_TRUE(raced.portfolio[0].won);
}

TEST(Portfolio, UnboundedProofCancelsBoundedLosers) {
  StuckZeroDut dut;
  EngineOptions options;
  options.kind = EngineKind::kPortfolio;
  // A bound the bounded engines cannot finish before PDR's fixpoint lands.
  options.max_frames = 1000000;
  options.time_limit_seconds = 60.0;
  const CheckResult result = core::run_engine(dut.nl, dut.bad, options);
  EXPECT_EQ(result.engine_used, EngineKind::kPdr);
  EXPECT_TRUE(result.proven_unbounded);
  EXPECT_FALSE(result.cancelled);
  ASSERT_TRUE(result.invariant.has_value());
  ASSERT_EQ(result.portfolio.size(), 3u);
  EXPECT_EQ(result.portfolio[0].engine, EngineKind::kBmc);
  EXPECT_EQ(result.portfolio[1].engine, EngineKind::kAtpg);
  EXPECT_EQ(result.portfolio[2].engine, EngineKind::kPdr);
  EXPECT_TRUE(result.portfolio[2].won);
  // The losers observed their cancel flag and stopped early.
  EXPECT_TRUE(result.portfolio[0].cancelled);
  EXPECT_TRUE(result.portfolio[1].cancelled);
  EXPECT_EQ(result.portfolio[0].status, "cancelled");
  EXPECT_EQ(result.portfolio[1].status, "cancelled");
}

TEST(Portfolio, CallerCancelPropagatesToEveryLeg) {
  CounterDut dut(8, 200);
  std::atomic<bool> cancel{true};
  EngineOptions options;
  options.kind = EngineKind::kPortfolio;
  options.max_frames = 1000000;
  options.time_limit_seconds = 60.0;
  options.cancel = &cancel;
  const CheckResult result = core::run_engine(dut.nl, dut.bad, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.status, "cancelled");
  EXPECT_FALSE(result.violated);
  for (const core::PortfolioOutcome& outcome : result.portfolio) {
    EXPECT_TRUE(outcome.cancelled)
        << core::engine_name(outcome.engine) << " was not cancelled";
  }
}

// ---- slow lane: full audits under --engine portfolio ----------------------

core::DetectorOptions portfolio_audit_configuration() {
  core::DetectorOptions options;
  options.engine.kind = EngineKind::kPortfolio;
  options.engine.max_frames = 8;
  options.engine.time_limit_seconds = 120.0;
  // Eq. 3 pseudo-scan obligations are violated even on clean designs and
  // race BMC against ATPG for the same witness; the paper's clean-design
  // parity story is about the Eq. 2/4 obligations, so scan stays off here
  // (mirroring the CLI's --no-scan).
  options.scan_pseudo_critical = false;
  options.check_bypass = true;
  return options;
}

std::string audit_signature(const designs::Design& design, std::size_t jobs,
                            core::VerdictStore* store = nullptr) {
  core::ParallelDetectorOptions options;
  options.detector = portfolio_audit_configuration();
  options.jobs = jobs;
  options.store = store;
  core::ParallelDetector detector(design, options);
  return detector.run().signature();
}

TEST(PortfolioAudit, SignatureParityAcrossJobsAndCache) {
  const designs::Design design = designs::build_clean("router");
  const std::string serial = audit_signature(design, 1);
  const std::string parallel = audit_signature(design, 4);
  EXPECT_EQ(serial, parallel);

  // Cold fill then warm replay through the verdict cache: hits must merge
  // into the same bytes the engines produced.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ts_portfolio_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    cache::VerdictCache::Options cache_options;
    cache_options.dir = dir.string();
    cache::VerdictCache cache(cache_options);
    cache::AuditVerdictStore store(cache, design,
                                   portfolio_audit_configuration(),
                                   /*fail_fast=*/false);
    EXPECT_EQ(audit_signature(design, 1, &store), serial);  // cold
    EXPECT_GT(cache.stats().stores, 0u);
    EXPECT_EQ(audit_signature(design, 4, &store), serial);  // warm
    EXPECT_GT(cache.stats().hits, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PortfolioAudit, MatchesTheWinningSingleEngineAudit) {
  const designs::Design design = designs::build_clean("router");
  const std::string raced = audit_signature(design, 2);
  // Per obligation the race returns the winner's verdict verbatim; on this
  // clean design every obligation picks the same backend, so the whole
  // report must be byte-identical to one single-engine audit.
  bool matched = false;
  for (const EngineKind kind :
       {EngineKind::kBmc, EngineKind::kAtpg, EngineKind::kPdr}) {
    core::ParallelDetectorOptions options;
    options.detector = portfolio_audit_configuration();
    options.detector.engine.kind = kind;
    options.jobs = 2;
    core::ParallelDetector detector(design, options);
    if (detector.run().signature() == raced) matched = true;
  }
  EXPECT_TRUE(matched);
}

TEST(PortfolioAudit, CertifiedPortfolioAuditValidates) {
  const designs::Design design = designs::build_clean("router");
  proof::CertifyOptions options;
  options.detector = portfolio_audit_configuration();
  options.jobs = 1;
  const proof::Certificate serial = proof::certify(design, options);
  options.jobs = 4;
  const proof::Certificate parallel = proof::certify(design, options);
  EXPECT_EQ(proof::certificate_to_json(serial).dump(),
            proof::certificate_to_json(parallel).dump());

  const proof::CertificateCheckResult verdict =
      proof::check_certificate(serial, design);
  EXPECT_TRUE(verdict.ok) << verdict.summary();

  // The acceptance bar: PDR's unbounded proof wins at least one race on a
  // clean design, and its invariant survives the independent re-check.
  std::size_t proven = 0;
  for (const proof::ObligationRecord& record : serial.records) {
    if (record.proven_unbounded) {
      EXPECT_EQ(record.engine_used, EngineKind::kPdr);
      EXPECT_TRUE(record.invariant.has_value());
      ++proven;
    }
  }
  EXPECT_GT(proven, 0u);
  EXPECT_EQ(verdict.invariants_checked, proven);
}

}  // namespace
}  // namespace trojanscout
