// Further behavioural coverage of the benchmark cores: AES control FSM,
// RISC interrupt/goto/PCL semantics, MC8051 external-bus protocol, and the
// Verilog export of every catalog entry.
#include <gtest/gtest.h>

#include "designs/aes.hpp"
#include "designs/aes_ref.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "sim/simulator.hpp"
#include "verilog/writer.hpp"

namespace trojanscout::designs {
namespace {

// ---- AES control ---------------------------------------------------------------

TEST(AesControl, BusyForTenRoundsThenDonePulse) {
  const Design d = build_aes({});
  sim::Simulator s(d.nl);
  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  EXPECT_EQ(s.read_output("busy"), 0u);
  s.set_input_port("start", 1);
  s.step();
  s.set_input_port("start", 0);
  int busy_cycles = 0;
  int done_pulses = 0;
  for (int t = 0; t < 16; ++t) {
    if (s.read_output("busy") != 0) ++busy_cycles;
    if (s.read_output("done") != 0) ++done_pulses;
    s.step();
  }
  EXPECT_EQ(busy_cycles, 10);
  EXPECT_EQ(done_pulses, 1);
}

TEST(AesControl, StartIsIgnoredWhileBusy) {
  const Design d = build_aes({});
  sim::Simulator s(d.nl);
  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  s.set_input_port("start", 1);
  s.step();  // kick
  // Keep start asserted mid-encryption; the round counter must not restart.
  for (int t = 0; t < 4; ++t) s.step();
  const std::uint64_t round_mid = s.read_register("round");
  EXPECT_GT(round_mid, 1u);
  s.step();
  EXPECT_EQ(s.read_register("round"), round_mid + 1) << "no restart";
}

TEST(AesControl, KeyLoadIsQuiescentDuringEncryption) {
  // The key register must hold during busy unless load_key is asserted —
  // this is the invariant the Eq. 2 monitor rides on.
  const Design d = build_aes({});
  sim::Simulator s(d.nl);
  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  s.set_input_port("load_key", 1);
  s.set_input_port("key_in", 0x1234);
  s.step();
  s.set_input_port("load_key", 0);
  const auto key_before = s.read_register_bits("key_reg");
  s.set_input_port("start", 1);
  s.step();
  s.set_input_port("start", 0);
  for (int t = 0; t < 12; ++t) {
    s.step();
    EXPECT_EQ(s.read_register_bits("key_reg"), key_before) << "cycle " << t;
  }
}

TEST(AesRef, RoundKeysChainThroughTheOnTheFlySchedule) {
  const AesBlock key = aes_block_from_hex("000102030405060708090a0b0c0d0e0f");
  const auto expanded = aes_expand_key(key);
  static constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                             0x20, 0x40, 0x80, 0x1b, 0x36};
  AesBlock rolling = key;
  for (int r = 1; r <= 10; ++r) {
    rolling = aes_next_round_key(rolling, kRcon[r - 1]);
    EXPECT_EQ(rolling, expanded[static_cast<std::size_t>(r)]) << "round " << r;
  }
}

// ---- RISC extras ----------------------------------------------------------------

class RiscDriver {
 public:
  explicit RiscDriver(const Design& design) : simulator_(design.nl) {
    simulator_.set_input_port("reset", 1);
    simulator_.step();
    simulator_.set_input_port("reset", 0);
    feed(0x0000);
    feed(0x0000);
  }
  void feed(std::uint16_t instruction, bool irq = false) {
    simulator_.set_input_port("prog_data", instruction);
    simulator_.set_input_port("ext_interrupt", irq ? 1 : 0);
    for (int i = 0; i < 4; ++i) simulator_.step();
  }
  void sync() { feed(0x0000); }
  std::uint64_t reg(const std::string& name) {
    return simulator_.read_register(name);
  }

 private:
  sim::Simulator simulator_;
};

TEST(RiscExtra, GotoLoadsTheTargetAndStallsOneSlot) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.feed(0x2800 | 0x345);  // GOTO 0x345
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), 0x345u);
  const std::uint64_t pc = cpu.reg("program_counter");
  cpu.sync();  // stalled slot: the wrong-path fetch must not execute
  EXPECT_EQ(cpu.reg("program_counter"), pc) << "stall holds the PC";
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter"), pc + 1);
}

TEST(RiscExtra, ExternalInterruptVectorsPcTo4AndClearsTheFlag) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  // The interrupt line is sampled every cycle: the flag sets mid-window and
  // is observed at that same window's cycle 4, vectoring the PC and
  // clearing the flag in one machine cycle.
  cpu.feed(0x0000, /*irq=*/true);
  EXPECT_EQ(cpu.reg("program_counter"), 0x04u);
  EXPECT_EQ(cpu.reg("interrupt_enable"), 0u) << "taken clears the flag";
}

TEST(RiscExtra, WritingPclRedirectsTheProgramCounter) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  cpu.feed(0x3000 | 0x77);  // MOVLW 0x77
  cpu.feed(0x0100 | 0x2);   // MOVWF PCL (file 0x2)
  cpu.sync();
  cpu.sync();
  EXPECT_EQ(cpu.reg("program_counter") & 0xFFu, 0x77u);
}

TEST(RiscExtra, StackWrapsModuloEight) {
  const Design d = build_risc({});
  RiscDriver cpu(d);
  for (int i = 0; i < 9; ++i) {
    cpu.feed(0x2000);  // CALL 0
    cpu.sync();        // execute
    cpu.sync();        // flush slot
  }
  EXPECT_EQ(cpu.reg("stack_pointer"), 1u) << "3-bit SP wraps after 8 calls";
}

// ---- MC8051 extras ---------------------------------------------------------------

TEST(Mc8051Extra, MovxWriteDrivesTheExternalBus) {
  const Design d = build_mc8051({});
  sim::Simulator s(d.nl);
  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  // MOV A,#0x5A; MOV R1,#0x21; MOVX @R1,A
  auto run = [&](std::uint8_t op, std::uint8_t operand) {
    s.set_input_port("code_op", op);
    s.set_input_port("code_operand", operand);
    s.step();
    s.step();
  };
  run(0x74, 0x5A);
  run(0x79, 0x21);
  s.set_input_port("code_op", 0xF3);
  s.step();  // fetch
  s.eval();
  // During the execute cycle the write strobe, address and data are live.
  s.step();
  EXPECT_EQ(s.read_output("xram_we"), 0u) << "strobe is a single cycle";
  // Re-run and look during the execute cycle itself.
  run(0x74, 0x5A);
  s.set_input_port("code_op", 0xF3);
  s.step();
  s.eval();
  // now in execute phase (phase=1) before the edge:
  EXPECT_EQ(s.read_output("xram_wdata"), 0x5Au);
  EXPECT_EQ(s.read_output("xram_addr"), 0x21u);
  EXPECT_EQ(s.read_output("xram_we"), 1u);
}

TEST(Mc8051Extra, UartBufferTracksTheLine) {
  const Design d = build_mc8051({});
  sim::Simulator s(d.nl);
  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  s.set_input_port("uart_rx", 0xAB);
  s.step();
  EXPECT_EQ(s.read_register("uart_buf"), 0xABu);
  s.set_input_port("uart_rx", 0xCD);
  s.step();
  EXPECT_EQ(s.read_register("uart_buf"), 0xCDu);
}

// ---- catalog / export ------------------------------------------------------------

TEST(Catalog, AllBenchmarksBuildValidateAndExport) {
  for (const auto& info : trojan_benchmarks()) {
    const Design armed = info.build(true);
    armed.nl.validate();
    EXPECT_FALSE(armed.trojan_gate_ranges.empty()) << info.name;
    EXPECT_NE(armed.trojan_trigger, netlist::kNullSignal) << info.name;
    EXPECT_TRUE(armed.nl.has_register(info.critical_register)) << info.name;
    const Design disarmed = info.build(false);
    disarmed.nl.validate();
    // Verilog export must at least produce a module with the ports.
    const std::string text = verilog::to_verilog_string(armed.nl, "dut");
    EXPECT_NE(text.find("endmodule"), std::string::npos) << info.name;
  }
}

TEST(Catalog, SpecsCoverTheCriticalRegisters) {
  for (const auto& info : trojan_benchmarks()) {
    const Design design = info.build(true);
    const auto* spec = design.spec.find(info.critical_register);
    ASSERT_NE(spec, nullptr) << info.name;
    EXPECT_FALSE(spec->ways.empty()) << info.name;
    EXPECT_FALSE(spec->obligations.empty())
        << info.name << ": bypass check needs an obligation";
  }
}

}  // namespace
}  // namespace trojanscout::designs
