// Supplementary coverage: solver budgets and minimization stats, remaining
// word ops, the reversed (candidate-leads) Eq. 3 direction, DSL-driven
// bypass checks, and back-to-back AES encryption.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "core/detector.hpp"
#include "designs/aes.hpp"
#include "designs/aes_ref.hpp"
#include "designs/mc8051.hpp"
#include "netlist/wordops.hpp"
#include "properties/miter.hpp"
#include "properties/monitors.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "specdsl/specdsl.hpp"

namespace trojanscout {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

// ---- SAT details ------------------------------------------------------------

TEST(SatDetails, PropagationBudgetYieldsUnknown) {
  sat::Solver solver;
  std::vector<sat::Var> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(solver.new_var());
  // A chain a0 -> a1 -> ... forces many propagations once a0 decided.
  for (int i = 0; i + 1 < 20; ++i) {
    solver.add_clause(sat::Lit(vars[i], true), sat::Lit(vars[i + 1], false));
  }
  sat::Budget budget;
  budget.propagation_limit = 1;
  // Propagation-limited solves must terminate (kUnknown or a fast answer).
  const auto result = solver.solve({}, budget);
  EXPECT_TRUE(result == sat::SolveResult::kUnknown ||
              result == sat::SolveResult::kSat);
}

TEST(SatDetails, ClauseMinimizationActuallyDropsLiterals) {
  // Minimization changes the search trajectory, so total learned-literal
  // counts are not comparable across runs; assert the mechanism fires and
  // the answer is unchanged.
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT400;
  designs::Design design = designs::build_mc8051(options);
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("ie"),
      properties::CorruptionMonitorKind::kExact);
  bmc::BmcOptions bmc_options;
  bmc_options.max_frames = 12;
  const auto result = bmc::check_bad_signal(design.nl, bad, bmc_options);
  EXPECT_TRUE(result.violated());
  EXPECT_GT(result.sat_stats.minimized_literals, 0u);

  bmc_options.solver.enable_clause_minimization = false;
  designs::Design design2 = designs::build_mc8051(options);
  const auto bad2 = properties::build_corruption_monitor(
      design2.nl, design2.spec.at("ie"),
      properties::CorruptionMonitorKind::kExact);
  const auto result2 = bmc::check_bad_signal(design2.nl, bad2, bmc_options);
  EXPECT_TRUE(result2.violated());
  EXPECT_EQ(result2.sat_stats.minimized_literals, 0u);
}

TEST(SatDetails, AddClauseAfterSolveKeepsIncrementality) {
  sat::Solver solver;
  const sat::Var a = solver.new_var();
  const sat::Var b = solver.new_var();
  solver.add_clause(sat::Lit(a, false), sat::Lit(b, false));
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  solver.add_clause(sat::Lit(a, true));
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_TRUE(solver.model_value(b));
  solver.add_clause(sat::Lit(b, true));
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);
}

// ---- word ops leftovers --------------------------------------------------------

TEST(WordOpsLeftovers, DecodeSplatConcat) {
  Netlist nl;
  const Word a = nl.add_input_port("a", 2);
  const SignalId bit = nl.add_input_port("b", 1)[0];
  nl.add_output_port("dec", netlist::w_decode(nl, a, 4));
  nl.add_output_port("spl", netlist::w_splat(bit, 3));
  nl.add_output_port("cat",
                     netlist::w_concat(a, netlist::w_splat(bit, 1)));
  sim::Simulator s(nl);
  for (unsigned v = 0; v < 4; ++v) {
    s.set_input_port("a", v);
    s.set_input_port("b", 1);
    s.eval();
    EXPECT_EQ(s.read_output("dec"), 1u << v);
    EXPECT_EQ(s.read_output("spl"), 0x7u);
    EXPECT_EQ(s.read_output("cat"), (1u << 2) | v);
  }
}

// ---- Eq. 3 reversed direction ----------------------------------------------------

TEST(PseudoReversed, CandidateBeforeCriticalIsCertified) {
  // P feeds R (pseudo-critical register placed *before* the critical one,
  // Section 4.1's final remark): R_t == P_{t-1}.
  Netlist nl;
  const Word in = nl.add_input_port("in", 4);
  const Word p = netlist::w_make_register(nl, "p", 4, 0);
  netlist::w_connect(nl, p, in);
  const Word r = netlist::w_make_register(nl, "r", 4, 0);
  netlist::w_connect(nl, r, p);
  nl.add_output_port("out", r);

  const auto bad = properties::build_pseudo_critical_monitor(
      nl, "r", "p", properties::PseudoPolarity::kIdentity,
      /*candidate_leads=*/true);
  bmc::BmcOptions options;
  options.max_frames = 10;
  EXPECT_EQ(bmc::check_bad_signal(nl, bad, options).status,
            bmc::BmcStatus::kBoundReached);

  // And the unshifted direction must be refutable (P does not lag R).
  Netlist copy = nl;
  const auto bad2 = properties::build_pseudo_critical_monitor(
      copy, "r", "p", properties::PseudoPolarity::kIdentity,
      /*candidate_leads=*/false);
  EXPECT_EQ(bmc::check_bad_signal(copy, bad2, options).status,
            bmc::BmcStatus::kViolated);
}

// ---- DSL-driven bypass check -----------------------------------------------------

TEST(SpecDslBypass, ObligationFromTheDslDrivesTheMiter) {
  designs::Design design = designs::build_mc8051({});
  const char* text = R"(
register sp
  way "Reset"      : reset == 1 -> const 0x07
  way "LCALL"      : phase == 1 && opcode == 0x12 -> add 1
  way "RET"        : phase == 1 && opcode == 0x22 -> sub 1
  way "MOV SP,#d"  : phase == 1 && opcode == 0x75 -> code_operand
  obligation "sp visible on sp_out" : reset == 0 observe sp latency 2
)";
  const auto spec = specdsl::parse_spec(design.nl, text);
  const auto miter =
      properties::build_bypass_miter(design.nl, spec.registers[0]);
  bmc::BmcOptions options;
  options.max_frames = 12;
  EXPECT_EQ(bmc::check_bad_signal(miter.nl, miter.bad, options).status,
            bmc::BmcStatus::kBoundReached)
      << "clean design must pass the DSL-declared obligation";
}

// ---- AES back-to-back ------------------------------------------------------------

TEST(AesBackToBack, TwoEncryptionsWithoutReloadMatchTheReference) {
  const designs::Design design = designs::build_aes({});
  sim::Simulator s(design.nl);
  const designs::AesBlock key =
      designs::aes_block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const designs::AesBlock pts[2] = {
      designs::aes_block_from_hex("6bc1bee22e409f96e93d7e117393172a"),
      designs::aes_block_from_hex("ae2d8a571e03ac9c9eb76fac45af8e51")};

  auto set_block = [&](const char* port, const designs::AesBlock& b) {
    util::BitVec bits(128);
    for (std::size_t byte = 0; byte < 16; ++byte) {
      for (std::size_t i = 0; i < 8; ++i) {
        bits.set(8 * (15 - byte) + i, ((b[byte] >> i) & 1u) != 0);
      }
    }
    s.set_input_port(port, bits);
  };
  auto read_ct = [&] {
    const util::BitVec ct =
        s.read_bits(design.nl.output_port("ciphertext").bits);
    designs::AesBlock out{};
    for (std::size_t byte = 0; byte < 16; ++byte) {
      for (std::size_t i = 0; i < 8; ++i) {
        if (ct.get(8 * (15 - byte) + i)) {
          out[byte] |= static_cast<std::uint8_t>(1u << i);
        }
      }
    }
    return out;
  };

  s.set_input_port("reset", 1);
  s.step();
  s.set_input_port("reset", 0);
  s.set_input_port("load_key", 1);
  set_block("key_in", key);
  s.step();
  s.set_input_port("load_key", 0);
  for (const auto& pt : pts) {
    s.set_input_port("start", 1);
    set_block("plaintext", pt);
    s.step();
    s.set_input_port("start", 0);
    int guard = 0;
    while (s.read_output("done") == 0 && guard++ < 20) s.step();
    ASSERT_LT(guard, 20);
    EXPECT_EQ(read_ct(), designs::aes_encrypt(pt, key));
  }
}

}  // namespace
}  // namespace trojanscout
