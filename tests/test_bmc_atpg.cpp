// BMC and ATPG engine tests on small hand-built sequential circuits with
// planted reachability targets at known depths, plus BMC/ATPG agreement.
#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "bmc/bmc.hpp"
#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "sim/simulator.hpp"

namespace trojanscout {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using netlist::Word;

/// A design whose bad signal fires exactly when an n-bit counter (counting
/// cycles where `go` is 1) reaches `target`.
struct CounterDut {
  Netlist nl;
  SignalId bad;
  explicit CounterDut(unsigned width, unsigned target) {
    const SignalId go = nl.add_input_port("go", 1)[0];
    const Word count = netlist::w_counter(nl, "count", width, go);
    bad = nl.b_and(netlist::w_eq_const(nl, count, target), go);
    nl.add_output_port("bad", Word{bad});
  }
};

TEST(Bmc, FindsCounterTargetAtExactDepth) {
  CounterDut dut(4, 5);  // needs go=1 for 6 frames; violation at frame 5
  bmc::BmcOptions options;
  options.max_frames = 32;
  const bmc::BmcResult result = bmc::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, bmc::BmcStatus::kViolated);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->violation_frame, 5u);
  // The witness must drive go=1 on every frame.
  for (const auto& frame : result.witness->frames) {
    EXPECT_TRUE(frame.bits.get(0));
  }
}

TEST(Bmc, RespectsBound) {
  CounterDut dut(6, 40);
  bmc::BmcOptions options;
  options.max_frames = 20;  // violation needs 41 frames
  const bmc::BmcResult result = bmc::check_bad_signal(dut.nl, dut.bad, options);
  EXPECT_EQ(result.status, bmc::BmcStatus::kBoundReached);
  EXPECT_EQ(result.frames_completed, 20u);
  EXPECT_FALSE(result.witness.has_value());
}

TEST(Bmc, UnreachableBadIsCleanAtBound) {
  Netlist nl;
  const SignalId a = nl.add_input_port("a", 1)[0];
  const SignalId bad = nl.b_and(a, nl.b_not(a));  // constant false
  bmc::BmcOptions options;
  options.max_frames = 8;
  const bmc::BmcResult result = bmc::check_bad_signal(nl, bad, options);
  EXPECT_EQ(result.status, bmc::BmcStatus::kBoundReached);
}

TEST(Bmc, WitnessReplaysToViolation) {
  CounterDut dut(4, 3);
  bmc::BmcOptions options;
  options.max_frames = 16;
  const bmc::BmcResult result = bmc::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_TRUE(result.witness.has_value());
  sim::Simulator simulator(dut.nl);
  for (std::size_t t = 0; t < result.witness->frames.size(); ++t) {
    simulator.set_inputs(result.witness->frames[t].bits);
    simulator.eval();
    if (t == result.witness->violation_frame) {
      EXPECT_TRUE(simulator.value(dut.bad));
    } else {
      EXPECT_FALSE(simulator.value(dut.bad));
    }
    simulator.step();
  }
}

TEST(Atpg, FindsCounterTargetAtExactDepth) {
  CounterDut dut(4, 5);
  atpg::AtpgOptions options;
  options.max_frames = 32;
  const atpg::AtpgResult result =
      atpg::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_EQ(result.status, atpg::AtpgStatus::kViolated);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->violation_frame, 5u);
}

TEST(Atpg, WitnessReplaysToViolation) {
  CounterDut dut(3, 4);
  atpg::AtpgOptions options;
  options.max_frames = 32;
  const atpg::AtpgResult result =
      atpg::check_bad_signal(dut.nl, dut.bad, options);
  ASSERT_TRUE(result.witness.has_value());
  sim::Simulator simulator(dut.nl);
  for (std::size_t t = 0; t < result.witness->frames.size(); ++t) {
    simulator.set_inputs(result.witness->frames[t].bits);
    simulator.eval();
    if (t == result.witness->violation_frame) {
      EXPECT_TRUE(simulator.value(dut.bad));
    }
    simulator.step();
  }
}

TEST(Atpg, ProvesCleanFramesExhaustively) {
  CounterDut dut(4, 9);
  atpg::AtpgOptions options;
  options.max_frames = 6;  // target unreachable within the bound
  const atpg::AtpgResult result =
      atpg::check_bad_signal(dut.nl, dut.bad, options);
  EXPECT_EQ(result.status, atpg::AtpgStatus::kBoundReached);
  EXPECT_EQ(result.frames_proven_clean, 6u);
  EXPECT_EQ(result.frames_aborted, 0u);
}

/// Multi-bit trigger: bad when input equals a magic constant after a
/// sequence gate (tests backtrace through comparators and state).
struct SequenceDut {
  Netlist nl;
  SignalId bad;
  SequenceDut() {
    const Word data = nl.add_input_port("data", 8);
    // Stage FSM: advance on 0xA5 then 0x3C, fire on 0x7E.
    const Word state = netlist::w_make_register(nl, "state", 2, 0);
    const SignalId m0 = netlist::w_eq_const(nl, data, 0xA5);
    const SignalId m1 = netlist::w_eq_const(nl, data, 0x3C);
    const SignalId m2 = netlist::w_eq_const(nl, data, 0x7E);
    const SignalId at0 = netlist::w_eq_const(nl, state, 0);
    const SignalId at1 = netlist::w_eq_const(nl, state, 1);
    const SignalId at2 = netlist::w_eq_const(nl, state, 2);
    Word next = netlist::w_const(nl, 0, 2);
    next = netlist::w_mux(nl, nl.b_and(at0, m0), netlist::w_const(nl, 1, 2),
                          next);
    next = netlist::w_mux(nl, nl.b_and(at1, m1), netlist::w_const(nl, 2, 2),
                          next);
    netlist::w_connect(nl, state, next);
    bad = nl.b_and(at2, m2);
    nl.add_output_port("bad", Word{bad});
  }
};

struct EngineCase {
  bool use_atpg;
};

class SequenceTrigger : public ::testing::TestWithParam<EngineCase> {};

TEST_P(SequenceTrigger, BothEnginesRecoverTheMagicSequence) {
  SequenceDut dut;
  sim::Witness witness;
  if (GetParam().use_atpg) {
    atpg::AtpgOptions options;
    options.max_frames = 16;
    const auto result = atpg::check_bad_signal(dut.nl, dut.bad, options);
    ASSERT_EQ(result.status, atpg::AtpgStatus::kViolated);
    witness = *result.witness;
  } else {
    bmc::BmcOptions options;
    options.max_frames = 16;
    const auto result = bmc::check_bad_signal(dut.nl, dut.bad, options);
    ASSERT_EQ(result.status, bmc::BmcStatus::kViolated);
    witness = *result.witness;
  }
  EXPECT_EQ(witness.violation_frame, 2u);
  EXPECT_EQ(witness.port_value(dut.nl, "data", 0), 0xA5u);
  EXPECT_EQ(witness.port_value(dut.nl, "data", 1), 0x3Cu);
  EXPECT_EQ(witness.port_value(dut.nl, "data", 2), 0x7Eu);
}

INSTANTIATE_TEST_SUITE_P(Engines, SequenceTrigger,
                         ::testing::Values(EngineCase{false},
                                           EngineCase{true}));

}  // namespace
}  // namespace trojanscout
