// util module tests: BitVec, RNG, table printer, CLI parser, resource.
#include <gtest/gtest.h>

#include <sstream>

#include "util/bitvec.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace trojanscout::util {
namespace {

TEST(BitVec, BasicSetGetResize) {
  BitVec v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_FALSE(v.get(3));
  v.set(3, true);
  EXPECT_TRUE(v.get(3));
  v.flip(3);
  EXPECT_FALSE(v.get(3));
  v.resize(100);
  EXPECT_EQ(v.size(), 100u);
  v.set(99, true);
  EXPECT_TRUE(v.get(99));
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, FromUintAndBack) {
  const BitVec v = BitVec::from_uint(0xDEAD, 16);
  EXPECT_EQ(v.to_uint(), 0xDEADu);
  EXPECT_EQ(v.to_hex_string(), "dead");
  EXPECT_EQ(BitVec::from_uint(0x5, 3).to_uint(), 0x5u);
  EXPECT_EQ(BitVec::from_uint(0xFF, 4).to_uint(), 0xFu) << "masked to width";
}

TEST(BitVec, BinaryStringRoundTrip) {
  const BitVec v = BitVec::from_binary_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.to_uint(), 0b10110u);
  EXPECT_EQ(v.to_binary_string(), "10110");
  EXPECT_THROW(BitVec::from_binary_string("10x1"), std::invalid_argument);
}

TEST(BitVec, WideValuesCrossWordBoundary) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_EQ(v.popcount(), 3u);
  BitVec w = v;
  w ^= v;
  EXPECT_EQ(w.popcount(), 0u);
  w |= v;
  EXPECT_EQ(w, v);
  w &= BitVec(130);
  EXPECT_EQ(w.popcount(), 0u);
}

TEST(BitVec, SetAllRespectsWidth) {
  BitVec v(67, false);
  v.set_all();
  EXPECT_EQ(v.popcount(), 67u);
  v.clear_all();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedValuesInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniformBits) {
  Xoshiro256 rng(9);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.next_bool() ? 1 : 0;
  EXPECT_GT(ones, 4700);
  EXPECT_LT(ones, 5300);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table table({"A", "B", "C"});
  table.add_row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("| x "), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",      "--alpha=3",  "--beta", "7",
                        "positional", "--gamma",   "--d=x"};
  CliParser cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.has("gamma"));
  EXPECT_TRUE(cli.get_bool("gamma", false));
  EXPECT_EQ(cli.get_string("d", ""), "x");
  EXPECT_EQ(cli.get_string("missing", "fb"), "fb");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, HexAndDoubleValues) {
  const char* argv[] = {"prog", "--addr=0x1F", "--ratio=2.5"};
  CliParser cli(3, argv);
  EXPECT_EQ(cli.get_int("addr", 0), 0x1F);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0), 2.5);
}

TEST(Resource, RssIsPositive) {
  EXPECT_GT(peak_rss_bytes(), 0u);
  EXPECT_GT(current_rss_bytes(), 0u);
}

TEST(Resource, VmHwmAgreesWithGetrusage) {
  // The two peak-RSS sources (getrusage ru_maxrss vs /proc/self/status
  // VmHWM) measure the same kernel high-water mark; the CLI summary prints
  // both as a cross-check. On Linux both must be available and agree to
  // within a small slack (page accounting differs by a few pages).
  const std::uint64_t rusage = peak_rss_bytes();
  const std::uint64_t hwm = peak_rss_hwm_bytes();
#ifdef __linux__
  ASSERT_GT(hwm, 0u);
  const std::uint64_t hi = rusage > hwm ? rusage : hwm;
  const std::uint64_t lo = rusage > hwm ? hwm : rusage;
  EXPECT_LT(hi - lo, 16u << 20)
      << "rusage=" << rusage << " vmhwm=" << hwm;
#else
  // Non-Linux: VmHWM is best-effort and may be unavailable (returns 0).
  if (hwm > 0) EXPECT_GT(rusage, 0u);
#endif
}

TEST(Resource, FormatBytesScales) {
  EXPECT_STREQ(format_bytes(512), "512 B");
  EXPECT_STREQ(format_bytes(2048), "2.00 KB");
  EXPECT_STREQ(format_bytes(3u << 20), "3.00 MB");
  EXPECT_STREQ(format_bytes(5ull << 30), "5.00 GB");
}

}  // namespace
}  // namespace trojanscout::util
