// End-to-end detection tests: Eq. 2 corruption checks on the benchmark
// Trojans with both engines, clean-design false-positive checks, and
// witness replay validation.
#include <gtest/gtest.h>

#include "baselines/workloads.hpp"
#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::core {
namespace {

DetectorOptions small_budget(EngineKind kind, std::size_t frames) {
  DetectorOptions options;
  options.engine.kind = kind;
  options.engine.max_frames = frames;
  options.engine.time_limit_seconds = 60.0;
  options.scan_pseudo_critical = false;
  options.check_bypass = false;
  return options;
}

struct DetectorCase {
  const char* benchmark;
  EngineKind engine;
  std::size_t frames;
};

void PrintTo(const DetectorCase& c, std::ostream* os) {
  *os << c.benchmark << "/" << engine_name(c.engine);
}

class BenchmarkDetection : public ::testing::TestWithParam<DetectorCase> {};

TEST_P(BenchmarkDetection, CorruptionCheckFindsTheTrojanAndWitnessReplays) {
  const auto param = GetParam();
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;  // keep unit tests fast
  const auto benchmarks = designs::trojan_benchmarks(catalog_options);
  const designs::BenchmarkInfo* info = nullptr;
  for (const auto& b : benchmarks) {
    if (b.name == param.benchmark) info = &b;
  }
  ASSERT_NE(info, nullptr);
  const designs::Design design = info->build(/*payload_enabled=*/true);

  DetectorOptions options = small_budget(param.engine, param.frames);
  if (param.engine == EngineKind::kAtpg) {
    // Functional stimulus hints for the ATPG simulation phase (the
    // TetraMAX-style functional initialization sequences).
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      options.engine.atpg_stimulus.push_back(baselines::generate_workload(
          design.nl, info->family, param.frames, 100 + seed));
    }
  }
  TrojanDetector detector(design, options);
  const CheckResult result =
      detector.check_corruption(info->critical_register);
  ASSERT_TRUE(result.violated)
      << "engine " << engine_name(param.engine) << " status " << result.status
      << " frames " << result.frames_completed;
  ASSERT_TRUE(result.witness.has_value());

  // Replay: the register's actual trace must deviate from the value implied
  // by holding/valid updates at the violation cycle — concretely, re-run the
  // witness and confirm the trigger fired (the sticky/trigger condition is
  // design-specific, so we check the documented payload effect instead).
  const auto trace = sim::replay_register(design.nl, *result.witness,
                                          info->critical_register);
  ASSERT_FALSE(trace.empty());
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BenchmarkDetection,
    ::testing::Values(
        DetectorCase{"MC8051-T400", EngineKind::kBmc, 24},
        DetectorCase{"MC8051-T400", EngineKind::kAtpg, 24},
        DetectorCase{"MC8051-T700", EngineKind::kBmc, 8},
        DetectorCase{"MC8051-T700", EngineKind::kAtpg, 8},
        DetectorCase{"MC8051-T800", EngineKind::kBmc, 8},
        DetectorCase{"MC8051-T800", EngineKind::kAtpg, 8},
        DetectorCase{"RISC-T100", EngineKind::kBmc, 40},
        DetectorCase{"RISC-T400", EngineKind::kAtpg, 80},
        DetectorCase{"RISC-T100", EngineKind::kAtpg, 40},
        DetectorCase{"RISC-T300", EngineKind::kBmc, 40},
        DetectorCase{"RISC-T300", EngineKind::kAtpg, 40},
        DetectorCase{"RISC-T400", EngineKind::kBmc, 40}));

TEST(Detector, CleanDesignsAreNotFlagged) {
  for (const char* family : {"mc8051", "risc"}) {
    const designs::Design design = designs::build_clean(family);
    for (const auto& reg : design.critical_registers) {
      TrojanDetector detector(design, small_budget(EngineKind::kBmc, 10));
      const CheckResult result = detector.check_corruption(reg);
      EXPECT_FALSE(result.violated)
          << family << "/" << reg << " false positive";
      EXPECT_TRUE(result.bound_reached) << family << "/" << reg;
    }
  }
}

TEST(Detector, CleanAesKeyRegisterIsNotFlagged) {
  const designs::Design design = designs::build_clean("aes");
  TrojanDetector detector(design, small_budget(EngineKind::kBmc, 4));
  const CheckResult result = detector.check_corruption("key_reg");
  EXPECT_FALSE(result.violated);
}

TEST(Detector, Mc8051T700WitnessContainsTheMagicInstruction) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT700;
  const designs::Design design = designs::build_mc8051(options);
  TrojanDetector detector(design, small_budget(EngineKind::kBmc, 8));
  const CheckResult result = detector.check_corruption("acc");
  ASSERT_TRUE(result.violated);
  const auto& witness = *result.witness;
  // Some fetch cycle must carry MOV A (0x74) followed by operand 0xCA at
  // the execute cycle where the violation happens.
  const std::size_t t = witness.violation_frame;
  EXPECT_EQ(witness.port_value(design.nl, "code_operand", t), 0xCAu);
  ASSERT_GE(t, 1u);
  EXPECT_EQ(witness.port_value(design.nl, "code_op", t - 1), 0x74u);
}

TEST(Detector, HoldOnlyMonitorMissesValueCorruptionDuringValidUpdate) {
  // The literal Eq. (2) reading cannot see T700 (the update uses a valid
  // way, only the value is wrong); the exact monitor can. This documents
  // why the detector defaults to kExact.
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT700;
  const designs::Design design = designs::build_mc8051(options);

  DetectorOptions weak = small_budget(EngineKind::kBmc, 8);
  weak.monitor_kind = properties::CorruptionMonitorKind::kHoldOnly;
  TrojanDetector weak_detector(design, weak);
  EXPECT_FALSE(weak_detector.check_corruption("acc").violated);

  TrojanDetector strong_detector(design, small_budget(EngineKind::kBmc, 8));
  EXPECT_TRUE(strong_detector.check_corruption("acc").violated);
}

TEST(Detector, FullAlgorithmRunOnMc8051T800) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  const designs::Design design = designs::build_mc8051(options);
  DetectorOptions detector_options = small_budget(EngineKind::kBmc, 8);
  detector_options.scan_pseudo_critical = true;
  detector_options.check_bypass = false;  // exercised in test_attacks
  TrojanDetector detector(design, detector_options);
  const DetectionReport report = detector.run();
  EXPECT_TRUE(report.trojan_found);
  bool found_sp = false;
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kCorruption && f.register_name == "sp") {
      found_sp = true;
    }
  }
  EXPECT_TRUE(found_sp) << report.summary();
}

}  // namespace
}  // namespace trojanscout::core
