// Whole-stack cross-check: on random small sequential circuits, the BMC and
// ATPG engines must agree exactly with explicit-state reachability analysis
// (BFS over the full state space) about the first cycle at which the bad
// signal can be driven to 1.
//
// This exercises the netlist builders, the topological evaluator, the
// Tseitin unroller, the CDCL solver, witness extraction, and the ATPG
// search against ground truth computed by brute force.
#include <gtest/gtest.h>

#include <queue>

#include "atpg/atpg.hpp"
#include "bmc/bmc.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace trojanscout {
namespace {

using netlist::Netlist;
using netlist::SignalId;

struct RandomCircuit {
  Netlist nl;
  SignalId bad = netlist::kNullSignal;
  std::vector<SignalId> inputs;
  std::vector<SignalId> dffs;
};

/// Builds a random sequential circuit with `n_inputs` PIs, `n_dffs` DFFs and
/// `n_gates` random gates; `bad` is a random AND of late signals (so it is
/// reachable sometimes, unreachable sometimes).
RandomCircuit make_random_circuit(util::Xoshiro256& rng, int n_inputs,
                                  int n_dffs, int n_gates) {
  RandomCircuit c;
  std::vector<SignalId> pool;
  for (int i = 0; i < n_inputs; ++i) {
    c.inputs.push_back(c.nl.add_input());
    pool.push_back(c.inputs.back());
  }
  for (int i = 0; i < n_dffs; ++i) {
    c.dffs.push_back(c.nl.add_dff(rng.next_bool()));
    pool.push_back(c.dffs.back());
  }
  auto pick = [&] { return pool[rng.next_below(pool.size())]; };
  for (int i = 0; i < n_gates; ++i) {
    SignalId g = netlist::kNullSignal;
    switch (rng.next_below(5)) {
      case 0: g = c.nl.b_and(pick(), pick()); break;
      case 1: g = c.nl.b_or(pick(), pick()); break;
      case 2: g = c.nl.b_xor(pick(), pick()); break;
      case 3: g = c.nl.b_not(pick()); break;
      default: g = c.nl.b_mux(pick(), pick(), pick()); break;
    }
    pool.push_back(g);
  }
  for (const SignalId dff : c.dffs) {
    c.nl.connect_dff_input(dff, pick());
  }
  // A conjunction of a few random signals: sometimes reachable, sometimes
  // not, rarely constant.
  c.bad = c.nl.b_and(pick(), c.nl.b_and(pick(), pick()));
  c.nl.add_output_port("bad", netlist::Word{c.bad});
  return c;
}

/// Ground truth: earliest frame (< max_frames) at which bad can be 1,
/// by BFS over (state, frame) with exhaustive input enumeration.
/// Returns -1 if unreachable within the bound.
int brute_force_first_violation(const RandomCircuit& c,
                                std::size_t max_frames) {
  const std::size_t n_inputs = c.inputs.size();
  const std::size_t n_dffs = c.dffs.size();

  // Direct state control: clone the circuit combinationally with the DFF
  // outputs replaced by fresh inputs, exposing (bad, next_state) as a pure
  // function of (state, input).
  Netlist comb;
  std::vector<SignalId> state_inputs;
  std::vector<SignalId> free_inputs;
  {
    // Clone combinationally: DFFs become inputs.
    std::vector<SignalId> map(c.nl.size(), netlist::kNullSignal);
    map[c.nl.const0()] = comb.const0();
    map[c.nl.const1()] = comb.const1();
    for (const SignalId in : c.nl.inputs()) {
      map[in] = comb.add_input();
      free_inputs.push_back(map[in]);
    }
    for (const SignalId dff : c.nl.dffs()) {
      map[dff] = comb.add_input();
      state_inputs.push_back(map[dff]);
    }
    for (const SignalId id : c.nl.topo_order()) {
      if (map[id] != netlist::kNullSignal) continue;
      const auto& g = c.nl.gate(id);
      switch (g.op) {
        case netlist::Op::kNot: map[id] = comb.b_not(map[g.fanin[0]]); break;
        case netlist::Op::kAnd:
          map[id] = comb.b_and(map[g.fanin[0]], map[g.fanin[1]]);
          break;
        case netlist::Op::kOr:
          map[id] = comb.b_or(map[g.fanin[0]], map[g.fanin[1]]);
          break;
        case netlist::Op::kXor:
          map[id] = comb.b_xor(map[g.fanin[0]], map[g.fanin[1]]);
          break;
        case netlist::Op::kMux:
          map[id] = comb.b_mux(map[g.fanin[0]], map[g.fanin[1]],
                               map[g.fanin[2]]);
          break;
        default:
          break;
      }
    }
    netlist::Word next_bits;
    for (const SignalId dff : c.nl.dffs()) {
      next_bits.push_back(map[c.nl.gate(dff).fanin[0]]);
    }
    comb.add_output_port("next", next_bits);
    comb.add_output_port("bad", netlist::Word{map[c.bad]});
  }

  sim::Simulator eval(comb);
  unsigned init_state = 0;
  for (std::size_t i = 0; i < n_dffs; ++i) {
    if (c.nl.gate(c.dffs[i]).init) init_state |= 1u << i;
  }

  std::vector<unsigned> frontier = {init_state};
  for (std::size_t frame = 0; frame < max_frames; ++frame) {
    std::vector<unsigned> next_frontier;
    std::vector<bool> next_seen(1u << n_dffs, false);
    bool bad_now = false;
    for (const unsigned state : frontier) {
      for (unsigned input = 0; input < (1u << n_inputs); ++input) {
        for (std::size_t i = 0; i < n_dffs; ++i) {
          eval.set_input(state_inputs[i], (state >> i) & 1u);
        }
        for (std::size_t i = 0; i < n_inputs; ++i) {
          eval.set_input(free_inputs[i], (input >> i) & 1u);
        }
        eval.eval();
        if (eval.read_output("bad") != 0) bad_now = true;
        const unsigned next_state =
            static_cast<unsigned>(eval.read_output("next"));
        if (!next_seen[next_state]) {
          next_seen[next_state] = true;
          next_frontier.push_back(next_state);
        }
      }
    }
    if (bad_now) return static_cast<int>(frame);
    frontier = std::move(next_frontier);
  }
  return -1;
}

class EngineCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineCrossCheck, BmcAndAtpgMatchExplicitStateReachability) {
  util::Xoshiro256 rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const RandomCircuit c =
        make_random_circuit(rng, 3, 5, 18 + static_cast<int>(rng.next_below(10)));
    constexpr std::size_t kFrames = 6;
    const int expected = brute_force_first_violation(c, kFrames);

    bmc::BmcOptions bmc_options;
    bmc_options.max_frames = kFrames;
    const auto bmc_result = bmc::check_bad_signal(c.nl, c.bad, bmc_options);
    if (expected < 0) {
      EXPECT_EQ(bmc_result.status, bmc::BmcStatus::kBoundReached)
          << "seed " << GetParam() << " round " << round;
    } else {
      ASSERT_EQ(bmc_result.status, bmc::BmcStatus::kViolated)
          << "seed " << GetParam() << " round " << round;
      EXPECT_EQ(bmc_result.witness->violation_frame,
                static_cast<std::size_t>(expected));
    }

    atpg::AtpgOptions atpg_options;
    atpg_options.max_frames = kFrames;
    atpg_options.backtrack_limit_per_frame = 100000;
    atpg_options.random_sequences = 4;
    const auto atpg_result = atpg::check_bad_signal(c.nl, c.bad, atpg_options);
    if (expected < 0) {
      EXPECT_EQ(atpg_result.status, atpg::AtpgStatus::kBoundReached)
          << "seed " << GetParam() << " round " << round;
      EXPECT_EQ(atpg_result.frames_aborted, 0u)
          << "small circuits must be fully exhausted";
    } else {
      ASSERT_EQ(atpg_result.status, atpg::AtpgStatus::kViolated)
          << "seed " << GetParam() << " round " << round;
      // The random phase may find a later frame than the earliest; the
      // deterministic per-frame sweep may not run if random finds first, so
      // only bound it.
      EXPECT_GE(atpg_result.witness->violation_frame,
                static_cast<std::size_t>(expected));
      EXPECT_LT(atpg_result.witness->violation_frame, kFrames);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineCrossCheck,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace trojanscout
