// Deterministic witness-replay harness: every witness an engine emits — for
// the Eq. 2 corruption monitor, the Eq. 3 pseudo-critical monitor, and the
// Eq. 4 bypass miter, from both the BMC and ATPG back ends — is re-simulated
// with the cycle-accurate sim::Simulator on the very monitor netlist it was
// found on, and the bad signal must actually be 1 at the claimed violation
// cycle. This closes the loop between the symbolic engines' frame semantics
// (frame t = inputs of frame t + state latched from t-1) and the concrete
// simulator.
#include <gtest/gtest.h>

#include "baselines/workloads.hpp"
#include "core/engine.hpp"
#include "designs/attacks.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "properties/miter.hpp"
#include "properties/monitors.hpp"
#include "sim/simulator.hpp"

namespace trojanscout::core {
namespace {

// Replays through the sim::replay_confirms library API (the same call the
// certificate checker makes). `require_minimal` additionally asserts the bad
// signal was silent on every earlier cycle — sound for BMC witnesses (each
// earlier frame was proven UNSAT) but not for ATPG, whose search may land on
// a non-first firing.
void expect_bad_fires_at_violation(const netlist::Netlist& nl,
                                   netlist::SignalId bad,
                                   const sim::Witness& witness,
                                   bool require_minimal) {
  ASSERT_LT(witness.violation_frame, witness.length());
  const sim::ReplayVerdict verdict = sim::replay_confirms(nl, bad, witness);
  EXPECT_TRUE(verdict.confirmed) << verdict.detail;
  if (require_minimal) {
    EXPECT_TRUE(verdict.minimal) << verdict.detail;
  }
}

struct ReplayCase {
  const char* benchmark;
  EngineKind engine;
  std::size_t frames;
};

void PrintTo(const ReplayCase& c, std::ostream* os) {
  *os << c.benchmark << "/" << engine_name(c.engine);
}

class CorruptionWitnessReplay : public ::testing::TestWithParam<ReplayCase> {};

// Eq. 2 witnesses from both engines on the Table-1 Trojans.
TEST_P(CorruptionWitnessReplay, BadSignalFiresExactlyAtTheViolation) {
  const auto param = GetParam();
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = 4;
  const auto benchmarks = designs::trojan_benchmarks(catalog_options);
  const designs::BenchmarkInfo* info = nullptr;
  for (const auto& b : benchmarks) {
    if (b.name == param.benchmark) info = &b;
  }
  ASSERT_NE(info, nullptr);
  designs::Design design = info->build(/*payload_enabled=*/true);

  const auto bad = properties::build_corruption_monitor(
      design.nl, *design.spec.find(info->critical_register),
      properties::CorruptionMonitorKind::kExact);

  EngineOptions options;
  options.kind = param.engine;
  options.max_frames = param.frames;
  options.time_limit_seconds = 60.0;
  if (param.engine == EngineKind::kAtpg) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      options.atpg_stimulus.push_back(baselines::generate_workload(
          design.nl, info->family, param.frames, 100 + seed));
    }
  }
  const CheckResult result = run_engine(design.nl, bad, options);
  ASSERT_TRUE(result.violated) << result.status;
  ASSERT_TRUE(result.witness.has_value());
  expect_bad_fires_at_violation(design.nl, bad, *result.witness,
                                param.engine == EngineKind::kBmc);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CorruptionWitnessReplay,
    ::testing::Values(ReplayCase{"MC8051-T400", EngineKind::kBmc, 24},
                      ReplayCase{"MC8051-T700", EngineKind::kBmc, 8},
                      ReplayCase{"MC8051-T800", EngineKind::kBmc, 8},
                      ReplayCase{"RISC-T100", EngineKind::kBmc, 40},
                      ReplayCase{"MC8051-T700", EngineKind::kAtpg, 8},
                      ReplayCase{"MC8051-T800", EngineKind::kAtpg, 8}));

// Eq. 3 witness: the planted pseudo-critical attack's shadow register
// deviates from its mirror relation exactly when the trigger fires.
TEST(PseudoWitnessReplay, ShadowDeviationWitnessReplays) {
  designs::Mc8051Options mc_options;
  mc_options.trojan = designs::Mc8051Trojan::kT800;
  mc_options.payload_enabled = false;
  designs::Design design = designs::build_mc8051(mc_options);
  designs::plant_pseudo_critical(design, "sp");

  const auto bad = properties::build_pseudo_critical_monitor(
      design.nl, "sp", designs::pseudo_register_name("sp"),
      properties::PseudoPolarity::kIdentity, /*candidate_leads=*/false);
  EngineOptions options;
  options.max_frames = 10;
  options.time_limit_seconds = 60.0;
  const CheckResult result = run_engine(design.nl, bad, options);
  ASSERT_TRUE(result.violated) << result.status;
  expect_bad_fires_at_violation(design.nl, bad, *result.witness,
                                /*require_minimal=*/true);
}

// Eq. 3 witness on an unrelated register pair (no attack): the monitor is
// violated because the registers simply are not mirrors; the witness must
// still replay faithfully.
TEST(PseudoWitnessReplay, UnrelatedPairDivergenceWitnessReplays) {
  designs::Design design = designs::build_clean("mc8051");
  const auto bad = properties::build_pseudo_critical_monitor(
      design.nl, "acc", "sp", properties::PseudoPolarity::kIdentity,
      /*candidate_leads=*/false);
  EngineOptions options;
  options.max_frames = 10;
  options.time_limit_seconds = 60.0;
  const CheckResult result = run_engine(design.nl, bad, options);
  ASSERT_TRUE(result.violated) << result.status;
  expect_bad_fires_at_violation(design.nl, bad, *result.witness,
                                /*require_minimal=*/true);
}

// Eq. 4 witness: replayed on the fork miter itself (which carries the extra
// fork_now input as part of its input frame).
TEST(BypassWitnessReplay, ForkMiterWitnessReplays) {
  designs::Mc8051Options mc_options;
  mc_options.trojan = designs::Mc8051Trojan::kT800;
  mc_options.payload_enabled = false;
  designs::Design design = designs::build_mc8051(mc_options);
  designs::plant_bypass(design, "sp");

  const properties::BypassMiter miter =
      properties::build_bypass_miter(design.nl, *design.spec.find("sp"));
  EngineOptions options;
  options.max_frames = 24;
  options.time_limit_seconds = 60.0;
  const CheckResult result = run_engine(miter.nl, miter.bad, options);
  ASSERT_TRUE(result.violated) << result.status;
  expect_bad_fires_at_violation(miter.nl, miter.bad, *result.witness,
                                /*require_minimal=*/true);
}

}  // namespace
}  // namespace trojanscout::core
