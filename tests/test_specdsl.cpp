// Spec-DSL tests: parsing, elaboration equivalence with code-built specs,
// and error reporting.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "core/detector.hpp"
#include "designs/mc8051.hpp"
#include "properties/monitors.hpp"
#include "specdsl/specdsl.hpp"

namespace trojanscout::specdsl {
namespace {

constexpr const char* kSpSpec = R"(
# Stack-pointer contract for the 8051-class core.
register sp
  way "Reset"      : reset == 1 -> const 0x07
  way "LCALL"      : phase == 1 && opcode == 0x12 -> add 1
  way "RET"        : phase == 1 && opcode == 0x22 -> sub 1
  way "MOV SP,#d"  : phase == 1 && opcode == 0x75 -> code_operand
)";

TEST(SpecDsl, ParsesWaysWithDescriptionsAndCycleLabels) {
  designs::Design design = designs::build_mc8051({});
  const auto spec = parse_spec(design.nl, kSpSpec);
  ASSERT_EQ(spec.registers.size(), 1u);
  const auto& sp = spec.registers[0];
  EXPECT_EQ(sp.reg, "sp");
  ASSERT_EQ(sp.ways.size(), 4u);
  EXPECT_EQ(sp.ways[0].description, "Reset");
  EXPECT_EQ(sp.ways[3].description, "MOV SP,#d");
}

TEST(SpecDsl, DetectionMatchesTheBuiltInSpec) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  designs::Design design = designs::build_mc8051(options);

  // Monitor from the DSL spec.
  designs::Design from_dsl = design;
  const auto dsl_spec = parse_spec(from_dsl.nl, kSpSpec);
  const auto bad_dsl = properties::build_corruption_monitor(
      from_dsl.nl, dsl_spec.registers[0],
      properties::CorruptionMonitorKind::kExact);
  bmc::BmcOptions bmc_options;
  bmc_options.max_frames = 8;
  const auto dsl_result =
      bmc::check_bad_signal(from_dsl.nl, bad_dsl, bmc_options);

  // Monitor from the code-built spec.
  designs::Design from_code = design;
  const auto bad_code = properties::build_corruption_monitor(
      from_code.nl, from_code.spec.at("sp"),
      properties::CorruptionMonitorKind::kExact);
  const auto code_result =
      bmc::check_bad_signal(from_code.nl, bad_code, bmc_options);

  ASSERT_EQ(dsl_result.status, bmc::BmcStatus::kViolated);
  ASSERT_EQ(code_result.status, bmc::BmcStatus::kViolated);
  EXPECT_EQ(dsl_result.witness->violation_frame,
            code_result.witness->violation_frame);
}

TEST(SpecDsl, CleanDesignCertifiesUnderTheDslSpec) {
  designs::Design design = designs::build_mc8051({});
  const auto spec = parse_spec(design.nl, kSpSpec);
  const auto bad = properties::build_corruption_monitor(
      design.nl, spec.registers[0],
      properties::CorruptionMonitorKind::kExact);
  bmc::BmcOptions options;
  options.max_frames = 10;
  EXPECT_EQ(bmc::check_bad_signal(design.nl, bad, options).status,
            bmc::BmcStatus::kBoundReached);
}

TEST(SpecDsl, BitSelectsAndBooleansElaborate) {
  designs::Design design = designs::build_mc8051({});
  const char* text = R"(
register ie
  way "set or clear" : (phase == 1 && opcode == 0xA8) || reset == 1 -> const 0
  way "bit poke" : ie[7] == 1 && !(int_req == 1) -> hold
)";
  const auto spec = parse_spec(design.nl, text);
  EXPECT_EQ(spec.registers[0].ways.size(), 2u);
}

TEST(SpecDsl, ObligationsParse) {
  designs::Design design = designs::build_mc8051({});
  const char* text = R"(
register acc
  way "Reset" : reset == 1 -> const 0
  obligation "acc drives port0" : reset == 0 observe acc latency 2
)";
  const auto spec = parse_spec(design.nl, text);
  ASSERT_EQ(spec.registers[0].obligations.size(), 1u);
  EXPECT_EQ(spec.registers[0].obligations[0].latency, 2u);
  EXPECT_EQ(spec.registers[0].obligations[0].observed_value.size(), 8u);
}

struct BadSpecCase {
  const char* label;
  const char* text;
  /// 1-based line the diagnostic must name; 0 = no line (whole-file error).
  int line;
  /// Substring the diagnostic must carry (the what, not just a location).
  const char* message;
};

class SpecDslErrors : public ::testing::TestWithParam<BadSpecCase> {};

/// A spec author fixes what the diagnostic names: every parse error must
/// point at the offending line and say what is wrong with it.
TEST_P(SpecDslErrors, AreReportedWithLineNumberAndCause) {
  designs::Design design = designs::build_mc8051({});
  const BadSpecCase& c = GetParam();
  try {
    parse_spec(design.nl, c.text);
    FAIL() << c.label << ": expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (c.line > 0) {
      const std::string expected_loc =
          "line " + std::to_string(c.line) + ":";
      EXPECT_NE(what.find(expected_loc), std::string::npos)
          << c.label << ": diagnostic lacks '" << expected_loc
          << "': " << what;
    }
    EXPECT_NE(what.find(c.message), std::string::npos)
        << c.label << ": diagnostic lacks '" << c.message << "': " << what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecDslErrors,
    ::testing::Values(
        BadSpecCase{"unknown register", "register bogus\n", 1,
                    "design has no register 'bogus'"},
        BadSpecCase{"way outside block", "way \"x\" : reset == 1 -> hold\n",
                    1, "statement outside a register block"},
        BadSpecCase{"unknown signal",
                    "register sp\n  way \"x\" : nosuch == 1 -> hold\n", 2,
                    "unknown port or register 'nosuch'"},
        BadSpecCase{"missing arrow",
                    "register sp\n  way \"x\" : reset == 1 const 0\n", 2,
                    "expected '->' in way"},
        BadSpecCase{"bad integer",
                    "register sp\n  way \"x\" : reset == zz -> hold\n", 2,
                    "expected integer"},
        BadSpecCase{"width mismatch",
                    "register sp\n  way \"x\" : reset == 1 -> pc\n", 2,
                    "width does not match"},
        BadSpecCase{"empty spec", "# nothing here\n", 0,
                    "no register blocks found"},
        BadSpecCase{"bad arity: add without operand",
                    "register sp\n  way \"x\" : reset == 1 -> add\n", 2,
                    "unexpected end of line"},
        BadSpecCase{"bad arity: dangling comparison",
                    "register sp\n  way \"x\" : reset == -> hold\n", 2,
                    "unexpected end of line"},
        BadSpecCase{"bad arity: latency without a count",
                    "register sp\n  way \"x\" : reset == 1 -> hold\n"
                    "  obligation \"o\" : reset == 1 latency\n",
                    3, "unexpected end of line"},
        BadSpecCase{"missing latency",
                    "register sp\n  way \"x\" : reset == 1 -> hold\n"
                    "  obligation \"o\" : reset == 1\n",
                    3, "obligation needs 'latency <N>'"},
        BadSpecCase{"duplicate register block",
                    "register sp\n  way \"x\" : reset == 1 -> hold\n"
                    "register sp\n  way \"y\" : reset == 1 -> hold\n",
                    3, "duplicate register block 'sp'"},
        BadSpecCase{"unrecognized statement",
                    "register sp\n  wayy \"x\" : reset == 1 -> hold\n", 2,
                    "unrecognized statement"}));

}  // namespace
}  // namespace trojanscout::specdsl
