// Telemetry subsystem tests: counter/histogram shard-merge determinism
// across thread counts, span nesting exported as valid Chrome trace_event
// JSON (matched B/E pairs, parent ids), the RunReport JSON-lines golden
// schema, and the jobs-invariance of the detection-report sink.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_detector.hpp"
#include "core/telemetry_sink.hpp"
#include "designs/mc8051.hpp"
#include "proof/json.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timer.hpp"
#include "telemetry/timeseries.hpp"

namespace trojanscout::telemetry {
namespace {

TEST(Registry, CounterMergeIsExactAcrossThreadCounts) {
  // The same logical workload sharded over 1, 2, 4, and 8 threads must
  // merge to the same totals: each thread writes to a private shard, and
  // snapshot() sums them.
  constexpr std::uint64_t kIncrements = 10000;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Registry registry;
    registry.set_enabled(true);
    const MetricId ticks = registry.counter("ticks");
    const MetricId weighted = registry.counter("weighted");
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&registry, ticks, weighted, threads] {
        for (std::uint64_t i = 0; i < kIncrements / threads; ++i) {
          registry.add(ticks);
          registry.add(weighted, 3);
        }
      });
    }
    for (auto& w : workers) w.join();

    const Registry::Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u) << threads << " threads";
    // Snapshot is sorted by name: "ticks" < "weighted".
    EXPECT_EQ(snap.counters[0].name, "ticks");
    EXPECT_EQ(snap.counters[0].value,
              kIncrements / threads * threads);
    EXPECT_EQ(snap.counters[1].name, "weighted");
    EXPECT_EQ(snap.counters[1].value, kIncrements / threads * threads * 3);
  }
}

TEST(Registry, DisabledRegistryRecordsNothing) {
  Registry registry;
  const MetricId id = registry.counter("silent");
  registry.add(id, 5);  // disabled: dropped
  registry.set_enabled(true);
  registry.add(id, 7);
  registry.set_enabled(false);
  registry.add(id, 11);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 7u);
}

TEST(Registry, InterningIsIdempotentAndResetKeepsIds) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId a = registry.counter("metric");
  EXPECT_EQ(registry.counter("metric"), a);
  registry.add(a, 2);
  registry.reset();
  EXPECT_EQ(registry.counter("metric"), a);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
}

TEST(Registry, HistogramAggregates) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId id = registry.histogram("latency");
  registry.record_seconds(id, 0.010);
  registry.record_seconds(id, 0.002);
  registry.record_seconds(id, 0.040);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  EXPECT_EQ(h.name, "latency");
  EXPECT_EQ(h.count, 3u);
  EXPECT_NEAR(h.sum_seconds, 0.052, 1e-6);
  EXPECT_NEAR(h.min_seconds, 0.002, 1e-6);
  EXPECT_NEAR(h.max_seconds, 0.040, 1e-6);
  std::uint64_t bucketed = 0;
  for (const auto b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3u);
}

TEST(Registry, BucketOfIsLog2Microseconds) {
  EXPECT_EQ(Registry::bucket_of(0.0), 0u);
  EXPECT_EQ(Registry::bucket_of(0.5e-6), 0u);    // < 1 us
  EXPECT_EQ(Registry::bucket_of(1.5e-6), 1u);    // [1, 2) us
  EXPECT_EQ(Registry::bucket_of(3e-6), 2u);      // [2, 4) us
  EXPECT_EQ(Registry::bucket_of(1e-3), 10u);     // 1000 us in [512, 1024)
  EXPECT_LT(Registry::bucket_of(3600.0), Registry::kHistogramBuckets);
}

TEST(Registry, ScopedTimerFeedsHistogram) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId id = registry.histogram("scope");
  {
    ScopedTimer timer(registry, id);
  }
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_GE(snap.histograms[0].max_seconds, 0.0);
}

TEST(Registry, CounterMacroRespectsGlobalEnable) {
  Registry& global = Registry::global();
  const bool was_enabled = global.enabled();
  global.set_enabled(true);
  TS_COUNTER_ADD("test.macro_counter", 2);
  global.set_enabled(false);
  TS_COUNTER_ADD("test.macro_counter", 100);
  global.set_enabled(was_enabled);
#ifndef TROJANSCOUT_TELEMETRY_DISABLED
  std::uint64_t value = 0;
  for (const auto& c : global.snapshot().counters) {
    if (c.name == "test.macro_counter") value = c.value;
  }
  EXPECT_EQ(value, 2u);
#endif
}

// ---- spans ---------------------------------------------------------------

struct ParsedEvent {
  std::string name;
  std::string ph;
  std::int64_t tid = 0;
  std::int64_t ts = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

std::vector<ParsedEvent> parse_trace(const std::string& text) {
  proof::Json json;
  std::string error;
  EXPECT_TRUE(proof::Json::parse(text, json, &error)) << error;
  const proof::Json* events = json.find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::vector<ParsedEvent> out;
  for (const proof::Json& e : events->items()) {
    ParsedEvent p;
    p.name = e.find("name")->as_string();
    p.ph = e.find("ph")->as_string();
    p.tid = e.find("tid")->as_int();
    p.ts = e.find("ts")->as_int();
    const proof::Json* args = e.find("args");
    if (args != nullptr) {
      p.span_id = static_cast<std::uint64_t>(args->find("span_id")->as_int());
      if (const proof::Json* parent = args->find("parent_id")) {
        p.parent_id = static_cast<std::uint64_t>(parent->as_int());
      }
    }
    out.push_back(p);
  }
  return out;
}

TEST(Span, NoRecorderMeansNoIds) {
  ASSERT_EQ(TraceRecorder::global(), nullptr);
  Span span("idle");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(Span::current_id(), 0u);
}

TEST(Span, NestedSpansEmitMatchedPairsWithParentIds) {
  TraceRecorder recorder;
  TraceRecorder::set_global(&recorder);
  {
    Span outer("outer");
    EXPECT_EQ(Span::current_id(), outer.id());
    {
      Span inner("inner");
      EXPECT_NE(inner.id(), outer.id());
    }
    EXPECT_EQ(Span::current_id(), outer.id());
  }
  TraceRecorder::set_global(nullptr);

  const auto events = parse_trace(recorder.to_chrome_json());
  ASSERT_EQ(events.size(), 4u);
  // B events carry parent ids; the inner span's parent is the outer span.
  std::map<std::string, ParsedEvent> begins;
  std::set<std::uint64_t> begin_ids;
  std::set<std::uint64_t> end_ids;
  for (const auto& e : events) {
    if (e.ph == "B") {
      begins[e.name] = e;
      begin_ids.insert(e.span_id);
    } else {
      ASSERT_EQ(e.ph, "E");
      end_ids.insert(e.span_id);
    }
  }
  EXPECT_EQ(begin_ids, end_ids);  // every B has a matching E
  ASSERT_TRUE(begins.count("outer"));
  ASSERT_TRUE(begins.count("inner"));
  EXPECT_EQ(begins["outer"].parent_id, 0u);
  EXPECT_EQ(begins["inner"].parent_id, begins["outer"].span_id);
}

TEST(Span, ExplicitParentCrossesThreads) {
  TraceRecorder recorder;
  TraceRecorder::set_global(&recorder);
  std::uint64_t root_id = 0;
  {
    Span root("root");
    root_id = root.id();
    std::thread worker([root_id] {
      Span child("child", root_id);
      EXPECT_NE(child.id(), 0u);
    });
    worker.join();
  }
  TraceRecorder::set_global(nullptr);

  const auto events = parse_trace(recorder.to_chrome_json());
  ASSERT_EQ(events.size(), 4u);
  const ParsedEvent* root_begin = nullptr;
  const ParsedEvent* child_begin = nullptr;
  for (const auto& e : events) {
    if (e.ph != "B") continue;
    if (e.name == "root") root_begin = &e;
    if (e.name == "child") child_begin = &e;
  }
  ASSERT_NE(root_begin, nullptr);
  ASSERT_NE(child_begin, nullptr);
  EXPECT_EQ(child_begin->parent_id, root_begin->span_id);
  EXPECT_NE(child_begin->tid, root_begin->tid);  // ran on a worker thread
}

TEST(Span, TimestampsAreMonotonicPerThread) {
  TraceRecorder recorder;
  TraceRecorder::set_global(&recorder);
  {
    Span a("a");
    Span b("b");
  }
  TraceRecorder::set_global(nullptr);
  const auto events = parse_trace(recorder.to_chrome_json());
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);
  }
}

// ---- event log -----------------------------------------------------------

std::vector<proof::Json> read_event_records(const std::string& path) {
  std::ifstream in(path);
  std::vector<proof::Json> records;
  std::string line;
  while (std::getline(in, line)) {
    proof::Json record;
    std::string error;
    EXPECT_TRUE(proof::Json::parse(line, record, &error))
        << "line " << records.size() + 1 << ": " << error;
    records.push_back(std::move(record));
  }
  return records;
}

TEST(EventLog, ConcurrentEmitsKeepSeqContiguousWithHeaderFirst) {
  const std::string path = ::testing::TempDir() + "events_concurrent.jsonl";
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50;
  {
    EventLog log(path);
    ASSERT_TRUE(log.ok());
    std::vector<std::thread> emitters;
    for (std::uint64_t t = 0; t < kThreads; ++t) {
      emitters.emplace_back([&log, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          log.emit("reshard", {{"job", "job-" + std::to_string(t)},
                               {"obligations", i}});
        }
      });
    }
    for (auto& e : emitters) e.join();
    EXPECT_EQ(log.record_count(), kThreads * kPerThread + 1);
  }

  const auto records = read_event_records(path);
  ASSERT_EQ(records.size(), kThreads * kPerThread + 1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const proof::Json& record = records[i];
    ASSERT_TRUE(record.is_object()) << "line " << i + 1;
    ASSERT_FALSE(record.entries().empty());
    // "type" leads every record so a human tailing the file can read it.
    EXPECT_EQ(record.entries().front().first, "type") << "line " << i + 1;
    ASSERT_NE(record.find("seq"), nullptr) << "line " << i + 1;
    ASSERT_NE(record.find("ts_ms"), nullptr) << "line " << i + 1;
    // seq is the total order of the sink: contiguous from 0, even under
    // concurrent emitters, because assignment and append share one lock.
    EXPECT_EQ(static_cast<std::uint64_t>(record.find("seq")->as_int()), i);
    if (i == 0) {
      EXPECT_EQ(record.find("type")->as_string(), "header");
      EXPECT_EQ(record.find("schema")->as_string(), "trojanscout-events-v1");
      ASSERT_NE(record.find("pid"), nullptr);
    } else {
      EXPECT_EQ(record.find("type")->as_string(), "reshard");
    }
  }
}

TEST(EventLog, FieldValuesEscapeAndRoundTripThroughJson) {
  const std::string path = ::testing::TempDir() + "events_escape.jsonl";
  const std::string hostile = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  {
    EventLog log(path);
    ASSERT_TRUE(log.ok());
    log.emit("worker_down", {{"endpoint", hostile},
                             {"reason", "read \"failed\""},
                             {"age_s", 1.5},
                             {"live", std::uint64_t{2}},
                             {"evicted", true}});
  }
  const auto records = read_event_records(path);
  ASSERT_EQ(records.size(), 2u);
  const proof::Json& record = records[1];
  EXPECT_EQ(record.find("endpoint")->as_string(), hostile);
  EXPECT_EQ(record.find("reason")->as_string(), "read \"failed\"");
  EXPECT_DOUBLE_EQ(record.find("age_s")->as_double(), 1.5);
  EXPECT_EQ(record.find("live")->as_int(), 2);
  EXPECT_TRUE(record.find("evicted")->as_bool());
}

TEST(EventLog, GlobalSinkIsOptionalAndBadPathsFailSoftly) {
  ASSERT_EQ(EventLog::global(), nullptr);
  emit_event("worker_up", {{"endpoint", "nobody:0"}});  // no sink: no-op

  EventLog bad("/nonexistent-dir-for-events/x.jsonl");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.record_count(), 0u);
  bad.emit("worker_up", {{"endpoint", "e"}});  // recorded nowhere, no throw
  EXPECT_EQ(bad.record_count(), 0u);

  const std::string path = ::testing::TempDir() + "events_global.jsonl";
  {
    EventLog log(path);
    ASSERT_TRUE(log.ok());
    EventLog::set_global(&log);
    EXPECT_EQ(EventLog::global(), &log);
    emit_event("worker_up", {{"endpoint", "tcp:127.0.0.1:1"}});
    // The destructor uninstalls itself so a dangling global is impossible.
  }
  EXPECT_EQ(EventLog::global(), nullptr);
  const auto records = read_event_records(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].find("type")->as_string(), "worker_up");
}

// ---- run reports ---------------------------------------------------------

TEST(RunReport, GoldenSchema) {
  RunReport report;
  report.add("demo")
      .set("name", "x")
      .set("count", 3)
      .set("big", std::uint64_t{18446744073709551615ull})
      .set("ratio", 0.5)
      .set("ok", true)
      .set("ids", std::vector<std::uint64_t>{1, 2, 3})
      .set("seconds", 1.25, /*timing=*/true);
  // Byte-exact golden line: field order is insertion order, "type" first.
  EXPECT_EQ(report.to_jsonl(true),
            "{\"type\":\"demo\",\"name\":\"x\",\"count\":3,"
            "\"big\":18446744073709551615,\"ratio\":0.5,\"ok\":true,"
            "\"ids\":[1,2,3],\"seconds\":1.25}\n");
  EXPECT_EQ(report.to_jsonl(false),
            "{\"type\":\"demo\",\"name\":\"x\",\"count\":3,"
            "\"big\":18446744073709551615,\"ratio\":0.5,\"ok\":true,"
            "\"ids\":[1,2,3]}\n");
}

TEST(RunReport, EscapesStringsAndOverwritesKeys) {
  RunReport report;
  auto& rec = report.add("demo");
  rec.set("path", "a\"b\\c\nd");
  rec.set("path", "tab\there");  // overwrite keeps position
  rec.set("later", 1);
  EXPECT_EQ(report.to_jsonl(true),
            "{\"type\":\"demo\",\"path\":\"tab\\there\",\"later\":1}\n");
}

TEST(RunReport, LinesParseAsJson) {
  RunReport report;
  report.add("one").set("nan", std::nan(""), true).set("k", -7);
  report.add("two").set("s", "<>&\x01");
  for (const auto& record : report.records()) {
    proof::Json json;
    std::string error;
    EXPECT_TRUE(proof::Json::parse(record.to_json(true), json, &error))
        << error;
  }
}

// ---- detection-report sink ----------------------------------------------

TEST(TelemetrySink, NonTimingFieldsIdenticalAcrossJobs) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  const designs::Design design = designs::build_mc8051(options);

  auto run = [&design](std::size_t jobs) {
    core::ParallelDetectorOptions parallel_options;
    parallel_options.detector.engine.kind = core::EngineKind::kBmc;
    parallel_options.detector.engine.max_frames = 8;
    parallel_options.jobs = jobs;
    core::ParallelDetector detector(design, parallel_options);
    RunReport report;
    core::append_detection_report(report, design.name, "BMC", detector.run(),
                                  /*total_seconds=*/jobs * 1.0);
    return report;
  };

  const RunReport serial = run(1);
  const RunReport parallel = run(4);
  // Timing fields (seconds, memory, RSS) differ; everything else must not.
  EXPECT_NE(serial.to_jsonl(true), parallel.to_jsonl(true));
  EXPECT_EQ(serial.to_jsonl(false), parallel.to_jsonl(false));

  // Every line carries the schema the validator expects.
  ASSERT_GE(serial.size(), 2u);
  const std::string last =
      serial.records().back().to_json(/*include_timing=*/true);
  proof::Json json;
  std::string error;
  ASSERT_TRUE(proof::Json::parse(last, json, &error)) << error;
  ASSERT_NE(json.find("type"), nullptr);
  EXPECT_EQ(json.find("type")->as_string(), "summary");
  EXPECT_NE(json.find("signature_fnv1a"), nullptr);
  EXPECT_NE(json.find("peak_rss_bytes"), nullptr);
}

TEST(TelemetrySink, RegistrySnapshotRecord) {
  Registry registry;
  registry.set_enabled(true);
  registry.add(registry.counter("alpha"), 4);
  registry.record_seconds(registry.histogram("beta"), 0.25);
  RunReport report;
  core::append_registry_snapshot(report, registry);
  ASSERT_EQ(report.size(), 1u);
  const std::string line = report.records()[0].to_json(true);
  EXPECT_NE(line.find("\"alpha\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"beta.count\":1"), std::string::npos) << line;
  // Histogram durations are timing-flagged: stripped without timing.
  const std::string bare = report.records()[0].to_json(false);
  EXPECT_EQ(bare.find("sum_seconds"), std::string::npos) << bare;
}

// ---- continuous-monitoring time series -----------------------------------

TEST(TimeSeries, FirstRecordIsBaselineOnly) {
  Registry registry;
  registry.set_enabled(true);
  registry.add(registry.counter("ticks"), 5);

  TimeSeries series(8);
  series.record(registry.snapshot(), /*t_ms=*/1000, /*steady_us=*/0);
  EXPECT_EQ(series.samples(), 1u);
  // The first sample only establishes the delta baseline: pre-existing
  // totals must not surface as a bogus first window.
  const auto windows = series.windows();
  EXPECT_TRUE(windows == nullptr || windows->empty());
  EXPECT_EQ(series.last_sample_ms(), 1000u);
}

TEST(TimeSeries, WindowsCarryDeltasRatesAndTailQuantiles) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId ticks = registry.counter("ticks");
  const MetricId solve = registry.histogram("solve");

  TimeSeries series(8);
  series.record(registry.snapshot(), 1000, 0);  // baseline

  registry.add(ticks, 10);
  for (int i = 0; i < 100; ++i) registry.record_seconds(solve, 0.001);
  series.record(registry.snapshot(), 3000, 2'000'000);  // 2 s later

  const auto windows = series.windows();
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->size(), 1u);
  const TimeSeries::Window& w = windows->front();
  EXPECT_EQ(w.seq, 0u);
  EXPECT_EQ(w.t_ms, 3000u);
  EXPECT_NEAR(w.span_seconds, 2.0, 1e-9);

  ASSERT_EQ(w.counters.size(), 1u);
  EXPECT_EQ(w.counters[0].name, "ticks");
  EXPECT_EQ(w.counters[0].delta, 10u);
  EXPECT_NEAR(w.counters[0].rate_per_s, 5.0, 1e-9);

  ASSERT_EQ(w.histograms.size(), 1u);
  EXPECT_EQ(w.histograms[0].name, "solve");
  EXPECT_EQ(w.histograms[0].count, 100u);
  EXPECT_NEAR(w.histograms[0].sum_seconds, 0.1, 1e-9);
  // All samples sit in the [512 µs, 1024 µs) log2 bucket, so every
  // quantile estimate lands inside that bucket and they are ordered.
  for (const double q : {w.histograms[0].p50_seconds,
                         w.histograms[0].p90_seconds,
                         w.histograms[0].p99_seconds}) {
    EXPECT_GE(q, 512e-6);
    EXPECT_LE(q, 1024e-6);
  }
  EXPECT_LE(w.histograms[0].p50_seconds, w.histograms[0].p90_seconds);
  EXPECT_LE(w.histograms[0].p90_seconds, w.histograms[0].p99_seconds);
}

TEST(TimeSeries, RingKeepsNewestWindowsAndSkipsIdleCounters) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId ticks = registry.counter("ticks");
  registry.add(registry.counter("idle"), 7);  // moves only pre-baseline

  TimeSeries series(3);
  series.record(registry.snapshot(), 0, 0);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    registry.add(ticks, i);
    series.record(registry.snapshot(), i * 1000, i * 1'000'000);
  }

  const auto windows = series.windows();
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->size(), 3u) << "capacity must bound the ring";
  for (std::size_t i = 0; i < windows->size(); ++i) {
    const TimeSeries::Window& w = (*windows)[i];
    EXPECT_EQ(w.seq, i + 2) << "oldest windows must be dropped";
    // "idle" never moved after the baseline: it must not appear.
    ASSERT_EQ(w.counters.size(), 1u);
    EXPECT_EQ(w.counters[0].name, "ticks");
    EXPECT_EQ(w.counters[0].delta, i + 3);
    EXPECT_TRUE(w.histograms.empty());
  }
  EXPECT_EQ(series.samples(), 6u);
  EXPECT_EQ(series.last_sample_ms(), 5000u);
  EXPECT_EQ(series.last_sample_steady_us(), 5'000'000u);
}

TEST(TimeSeries, SamplerFeedsWindowsInTheBackground) {
  Registry registry;
  registry.set_enabled(true);
  const MetricId ticks = registry.counter("ticks");

  TimeSeries series(32);
  Sampler sampler(series, registry, /*interval_ms=*/5.0);
  sampler.start();
  for (int i = 0; i < 40 && series.samples() < 4; ++i) {
    registry.add(ticks);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.stop();
  EXPECT_GE(series.samples(), 4u);
  const auto windows = series.windows();
  ASSERT_NE(windows, nullptr);
  EXPECT_FALSE(windows->empty());
  // stop() is idempotent and the age readout stays sane after it.
  sampler.stop();
  EXPECT_GT(sampler.last_sample_age_us(), 0u);
}

TEST(EventLog, SizeCapRotatesWithFreshHeaderAndSeq) {
  const std::string path = ::testing::TempDir() + "events_rotate.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::uint64_t rotations = 0;
  {
    // ~80 bytes per record against a 512-byte cap: several rotations.
    EventLog log(path, /*max_bytes=*/512);
    ASSERT_TRUE(log.ok());
    for (std::uint64_t i = 0; i < 64; ++i) {
      log.emit("reshard", {{"job", "rotate-me"}, {"obligations", i}});
    }
    rotations = log.rotations();
  }
  EXPECT_GT(rotations, 0u);

  // Both generations are independently valid streams: header first with
  // the schema marker, then contiguous seq from 0.
  for (const std::string& file : {path, path + ".1"}) {
    const auto records = read_event_records(file);
    ASSERT_GE(records.size(), 1u) << file;
    EXPECT_EQ(records[0].find("type")->as_string(), "header") << file;
    EXPECT_EQ(records[0].find("schema")->as_string(), "trojanscout-events-v1")
        << file;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint64_t>(records[i].find("seq")->as_int()),
                i)
          << file << " line " << i + 1;
    }
  }
}

TEST(EventLog, UnboundedLogNeverRotates) {
  const std::string path = ::testing::TempDir() + "events_unbounded.jsonl";
  std::remove((path + ".1").c_str());
  EventLog log(path);  // max_bytes = 0: rotation disabled
  ASSERT_TRUE(log.ok());
  for (std::uint64_t i = 0; i < 64; ++i) {
    log.emit("reshard", {{"job", "grow"}, {"obligations", i}});
  }
  EXPECT_EQ(log.rotations(), 0u);
  EXPECT_FALSE(std::ifstream(path + ".1").good());
}

}  // namespace
}  // namespace trojanscout::telemetry
