// An SoC integrator's acceptance audit: run the paper's full Algorithm 1 —
// pseudo-critical scan, Eq. 2 corruption check, Eq. 4 bypass check — on a
// set of delivered 3PIPs, including one carrying a Section 4 evasion attack.
//
// The per-delivery property checks are scheduled across worker threads
// (--jobs, default: all hardware threads); the verdicts are identical to a
// serial run. --fail-fast stops a delivery's audit at its first finding.
//
// Observability taps: --trace-out writes the spans of every obligation
// (unroll → CNF → SAT frames → witness replay) as Chrome trace_event JSON —
// load it in Perfetto to see the worker threads chew through the audit.
// --metrics-out writes a JSON-lines run report (one "obligation" record per
// property run, one "summary" per delivery, one "counters" snapshot);
// every non-timing field is byte-identical for any --jobs value.
//
// --profile-out folds the span tree into a per-phase/per-obligation time
// attribution (deterministic JSON + a top-phases table on stderr);
// --progress[=SECS] renders a live heartbeat (aggregate over all deliveries'
// obligations) and arms the stall watchdog (--stall-window=SECS).
//
// Run: ./soc_audit [--budget=seconds] [--jobs=N] [--fail-fast]
//                  [--trace-out=trace.json] [--metrics-out=audit.jsonl]
//                  [--profile-out=profile.json] [--progress[=SECS]]
#include <iostream>
#include <memory>

#include "core/parallel_detector.hpp"
#include "core/telemetry_sink.hpp"
#include "designs/attacks.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/router.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/span.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace trojanscout;

int main(int argc, char** argv) {
  const util::CliParser cli(argc, argv);
  const double budget = cli.get_double("budget", 30.0);
  const std::size_t jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  const bool fail_fast = cli.get_bool("fail-fast", false);
  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  const std::string profile_out = cli.get_string("profile-out", "");

  std::unique_ptr<telemetry::TraceRecorder> recorder;
  if (!trace_out.empty() || !profile_out.empty()) {
    recorder = std::make_unique<telemetry::TraceRecorder>();
    telemetry::TraceRecorder::set_global(recorder.get());
  }
  if (!metrics_out.empty() || !profile_out.empty()) {
    telemetry::Registry::global().set_enabled(true);
  }
  std::unique_ptr<telemetry::ProgressReporter> progress;
  if (cli.has("progress")) {
    telemetry::ProgressOptions po;
    po.interval_seconds = cli.get_double("progress", 1.0);
    po.stall_window_seconds = cli.get_double("stall-window", 30.0);
    progress = std::make_unique<telemetry::ProgressReporter>(po);
    telemetry::ProgressReporter::set_global(progress.get());
  }
  telemetry::RunReport metrics;

  struct Delivery {
    std::string vendor_claim;
    designs::Design design;
  };
  std::vector<Delivery> deliveries;

  deliveries.push_back({"clean microcontroller", designs::build_clean("mc8051")});

  {
    designs::Mc8051Options options;
    options.trojan = designs::Mc8051Trojan::kT800;
    deliveries.push_back(
        {"microcontroller (UART Trojan inside)", designs::build_mc8051(options)});
  }
  {
    // A vendor using the Section 4.1 evasion: the stack pointer is mirrored
    // into a shadow register that feeds its fanout, and the shadow is what
    // the (sequence-triggered) Trojan corrupts (Figure 2).
    designs::Mc8051Options options;
    options.trojan = designs::Mc8051Trojan::kT400;
    options.payload_enabled = false;
    designs::Design design = designs::build_mc8051(options);
    designs::plant_pseudo_critical(design, "sp");
    deliveries.push_back({"microcontroller (pseudo-critical attack inside)",
                          std::move(design)});
  }
  {
    // The sneaky vendor: the stack pointer itself is never corrupted; a
    // bypass register takes over its fanout when triggered (Figure 3).
    designs::Mc8051Options options;
    options.trojan = designs::Mc8051Trojan::kT800;
    options.payload_enabled = false;
    designs::Design design = designs::build_mc8051(options);
    designs::plant_bypass(design, "sp");
    deliveries.push_back({"microcontroller (bypass attack inside)",
                          std::move(design)});
  }

  {
    // A NoC router whose destination register is misrouted to the
    // attacker's port after a 3-flit magic sequence (the paper's third
    // motivating example).
    designs::RouterOptions options;
    options.trojan = designs::RouterTrojan::kMisroute;
    deliveries.push_back(
        {"packet router (misroute Trojan inside)", designs::build_router(options)});
  }

  util::Table table({"Delivery", "Verdict", "Findings",
                     "Trust bound (cycles)"});
  for (auto& delivery : deliveries) {
    core::ParallelDetectorOptions options;
    options.detector.engine.kind = core::EngineKind::kBmc;
    options.detector.engine.max_frames = 24;
    options.detector.engine.time_limit_seconds = budget;
    options.jobs = jobs;
    options.fail_fast = fail_fast;
    util::Stopwatch delivery_timer;
    core::ParallelDetector detector(delivery.design, options);
    const core::DetectionReport report = detector.run();
    if (!metrics_out.empty()) {
      core::append_detection_report(metrics, delivery.design.name, "BMC",
                                    report, delivery_timer.elapsed_seconds());
    }

    std::string findings;
    for (const auto& finding : report.findings) {
      findings += std::string(core::finding_kind_name(finding.kind)) + "(" +
                  finding.register_name + ") ";
    }
    table.add_row({delivery.vendor_claim,
                   report.trojan_found ? "REJECT" : "accept",
                   findings.empty() ? "-" : findings,
                   std::to_string(report.trust_bound_frames)});
    std::cerr << "[audit] " << delivery.vendor_claim << ": "
              << report.summary() << "\n";
  }

  if (progress != nullptr) {
    telemetry::ProgressReporter::set_global(nullptr);
    progress->stop();
    if (progress->stall_count() > 0) {
      std::cerr << "[audit] watchdog: " << progress->stall_count()
                << " stall(s) detected\n";
    }
  }
  if (recorder != nullptr) {
    telemetry::TraceRecorder::set_global(nullptr);
    if (!trace_out.empty()) {
      if (recorder->write_file(trace_out)) {
        std::cerr << "[audit] trace written to " << trace_out << " ("
                  << recorder->event_count() << " events)\n";
      } else {
        std::cerr << "[audit] cannot write " << trace_out << "\n";
      }
    }
  }
  if (!metrics_out.empty()) {
    core::append_registry_snapshot(metrics, telemetry::Registry::global());
    if (progress != nullptr) {
      telemetry::append_stall_records(metrics, *progress);
    }
    if (metrics.write_file(metrics_out)) {
      std::cerr << "[audit] metrics written to " << metrics_out << " ("
                << metrics.size() << " records)\n";
    } else {
      std::cerr << "[audit] cannot write " << metrics_out << "\n";
    }
  }
  if (!profile_out.empty() && recorder != nullptr) {
    const telemetry::Profile profile = telemetry::build_profile(
        *recorder, telemetry::Registry::global().snapshot());
    if (profile.write_file(profile_out)) {
      std::cerr << "[audit] profile written to " << profile_out << " ("
                << profile.phases.size() << " phases, "
                << profile.obligations.size() << " obligations)\n";
      std::cerr << "[audit] top phases by exclusive time:\n"
                << profile.top_table(10);
    } else {
      std::cerr << "[audit] cannot write " << profile_out << "\n";
    }
  }

  std::cout << "\n=== SoC integration audit ===\n\n";
  table.print(std::cout);
  std::cout << "\nPeak RSS: " << util::peak_rss_summary();
  std::cout << "\nProperty runs per delivery cover: Eq. 3 pseudo-critical "
               "scan over same-width register pairs, Eq. 2 corruption per "
               "critical register, Eq. 4 bypass miter where the spec "
               "declares observability obligations (Algorithm 1).\n";
  return 0;
}
