// Auditing a third-party AES-128 core for key-corrupting Trojans.
//
// An SoC integrator receives three versions of an AES IP and checks the key
// register against its two valid ways (reset, load) with both back ends:
//   * the clean core — certified for the unrolled bound;
//   * AES-T700 — the key is corrupted when a specific plaintext (which
//     happens to be the FIPS-197 example vector!) is encrypted;
//   * AES-T1200 — a 2^128-cycle time bomb, undetectable within any bound:
//     the detector reports exactly how many cycles it *can* vouch for.
//
// Run: ./aes_key_audit [--budget=seconds]
#include <iostream>

#include "core/detector.hpp"
#include "designs/aes.hpp"
#include "util/cli.hpp"

using namespace trojanscout;

namespace {

void audit(const char* label, const designs::Design& design, double budget,
           std::size_t max_frames) {
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames = max_frames;
  options.engine.time_limit_seconds = budget;
  core::TrojanDetector detector(design, options);
  const core::CheckResult result = detector.check_corruption("key_reg");

  std::cout << label << ": ";
  if (result.violated) {
    const auto& witness = *result.witness;
    std::cout << "KEY CORRUPTION at cycle " << witness.violation_frame
              << " (in " << result.seconds << " s)\n";
    // Find the plaintext of the encryption that triggered it.
    for (std::size_t t = 0; t < witness.frames.size(); ++t) {
      if (witness.port_value(design.nl, "start", t) != 0) {
        std::cout << "    start at cycle " << t << " with plaintext 0x"
                  << witness.port_bits(design.nl, "plaintext", t)
                         .to_hex_string()
                  << "\n";
      }
    }
  } else {
    std::cout << "no corruption — key register certified for "
              << result.frames_completed << " clock cycles ("
              << result.seconds << " s spent)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliParser cli(argc, argv);
  const double budget = cli.get_double("budget", 60.0);

  std::cout << "Key-register contract: Reset=1 -> 0, Load=1 -> key input, "
               "otherwise hold.\n\n";

  audit("clean AES-128   ", designs::build_aes({}), budget, 64);

  designs::AesOptions t700;
  t700.trojan = designs::AesTrojan::kT700;
  audit("AES-T700 variant", designs::build_aes(t700), budget, 64);

  designs::AesOptions t1200;
  t1200.trojan = designs::AesTrojan::kT1200;
  audit("AES-T1200 bomb  ", designs::build_aes(t1200), budget, 64);

  std::cout << "\nAES-T1200's trigger needs ~2^128 clock cycles: no bounded "
               "check can reach it. The honest verdict is the paper's: "
               "\"trustworthy for the unrolled bound\" — reset the core "
               "before that many cycles elapse (Section 3.2).\n";
  return 0;
}
