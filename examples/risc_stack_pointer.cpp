// The paper's running example (Figure 1): a RISC processor whose stack
// pointer is decremented by two once 25 instructions with bits [13:10] in
// 0x4..0xB have executed. Walks through:
//   * the Table 2 valid-ways contract for the stack pointer,
//   * BMC detection and the recovered trigger sequence,
//   * witness replay showing the corruption,
//   * a VCD dump for waveform inspection.
//
// Run: ./risc_stack_pointer [--trigger=N]
#include <iostream>

#include "core/detector.hpp"
#include "designs/risc.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "util/cli.hpp"

using namespace trojanscout;

int main(int argc, char** argv) {
  const util::CliParser cli(argc, argv);
  const unsigned trigger =
      static_cast<unsigned>(cli.get_int("trigger", 25));

  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kFig1StackPointer;
  options.trigger_count = trigger;
  const designs::Design design = designs::build_risc(options);

  std::cout << "3PIP under audit: " << design.name << " ("
            << design.nl.size() << " gates, " << design.nl.dffs().size()
            << " flip-flops)\n\nStack pointer contract (from the datasheet):\n";
  for (const auto& way : design.spec.at("stack_pointer").ways) {
    std::cout << "  cycle " << way.cycle_label << ": " << way.description
              << " -> " << way.value_description << "\n";
  }

  core::DetectorOptions detector_options;
  detector_options.engine.kind = core::EngineKind::kBmc;
  detector_options.engine.max_frames = 4 * trigger + 40;
  detector_options.engine.time_limit_seconds = 120;
  core::TrojanDetector detector(design, detector_options);

  std::cout << "\nChecking Eq. (2) no-data-corruption on stack_pointer...\n";
  const core::CheckResult result = detector.check_corruption("stack_pointer");
  if (!result.violated) {
    std::cout << "No corruption found within " << result.frames_completed
              << " cycles.\n";
    return 1;
  }

  const auto& witness = *result.witness;
  std::cout << "VIOLATION at clock cycle " << witness.violation_frame
            << " (solved in " << result.seconds << " s).\n\n";

  // Decode the instruction stream of the witness (one instruction per 4
  // cycles; the instruction register loads at the 4th).
  std::cout << "Recovered trigger program (instruction per machine cycle):\n";
  unsigned matching = 0;
  for (std::size_t t = 3; t < witness.frames.size(); t += 4) {
    const std::uint64_t instr = witness.port_value(design.nl, "prog_data", t);
    const unsigned msb4 = static_cast<unsigned>((instr >> 10) & 0xF);
    const bool in_range = msb4 >= 0x4 && msb4 <= 0xB;
    if (in_range) ++matching;
    if (t < 24 || in_range) {
      std::cout << "  cycle " << t << ": instr=0x" << std::hex << instr
                << std::dec << " bits[13:10]=0x" << std::hex << msb4
                << std::dec << (in_range ? "  <- counts toward trigger" : "")
                << "\n";
    }
  }
  std::cout << "Matching instructions: " << matching << " (trigger fires at "
            << trigger << ")\n\n";

  const auto trace = sim::replay_register(design.nl, witness, "stack_pointer");
  std::cout << "Stack-pointer replay (last 8 cycles):";
  for (std::size_t t = trace.size() >= 8 ? trace.size() - 8 : 0;
       t < trace.size(); ++t) {
    std::cout << " " << trace[t].to_uint();
  }
  std::cout << "\nThe final -2 step has no CALL/RETURN/RESET justification: "
               "Trojan confirmed.\n";

  if (sim::write_witness_vcd(design.nl, witness, "risc_witness.vcd")) {
    std::cout << "Waveform written to risc_witness.vcd\n";
  }
  return 0;
}
