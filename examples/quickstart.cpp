// Quickstart: the full trojanscout flow on a 40-line custom IP.
//
//  1. Describe a third-party IP as a netlist (here: a tiny bus-bridge with a
//     configuration register — and a hidden Trojan a rogue vendor added).
//  2. Write down the register's *valid ways* (the datasheet contract).
//  3. Hand both to the TrojanDetector and let bounded model checking search
//     for an input sequence that corrupts the register outside the contract.
//
// Build & run:  ./quickstart
#include <iostream>

#include "core/detector.hpp"
#include "netlist/wordops.hpp"
#include "sim/simulator.hpp"

using namespace trojanscout;

int main() {
  // --- 1. The vendor's IP: a bus bridge with an 8-bit config register. ----
  designs::Design ip;
  ip.name = "bus-bridge";
  netlist::Netlist& nl = ip.nl;

  const auto reset = nl.add_input_port("reset", 1)[0];
  const auto wr_en = nl.add_input_port("wr_en", 1)[0];
  const auto wr_data = nl.add_input_port("wr_data", 8);
  const auto bus = nl.add_input_port("bus", 8);

  const auto config = netlist::w_make_register(nl, "config", 8, 0x00);

  // Hidden Trojan: after seeing the byte 0x5A on the bus three times, the
  // config register is silently forced to 0xFF (e.g. "all access enabled").
  const auto seen_magic = netlist::w_eq_const(nl, bus, 0x5A);
  const auto count = netlist::w_make_register(nl, "trj_count", 2, 0);
  const auto fire = nl.b_and(seen_magic, netlist::w_eq_const(nl, count, 2));
  netlist::w_connect(
      nl, count,
      netlist::w_mux(nl, nl.b_and(seen_magic, nl.b_not(fire)),
                     netlist::w_inc(nl, count), count));

  netlist::Word next = config;
  next = netlist::w_mux(nl, wr_en, wr_data, next);             // valid write
  next = netlist::w_mux(nl, reset, netlist::w_const(nl, 0, 8), next);
  next = netlist::w_mux(nl, fire, netlist::w_const(nl, 0xFF, 8), next);  // !!
  netlist::w_connect(nl, config, next);
  nl.add_output_port("config_out", config);

  // --- 2. The defender's contract: how config may legally change. ---------
  properties::RegisterSpec spec;
  spec.reg = "config";
  spec.ways.push_back({"Reset=1", "Any", "0x00", reset,
                       netlist::w_const(nl, 0, 8)});
  spec.ways.push_back({"Write enable", "Any", "write data", wr_en, wr_data});
  ip.spec.registers.push_back(spec);
  ip.critical_registers = {"config"};

  // --- 3. Detect. ----------------------------------------------------------
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames = 32;
  options.scan_pseudo_critical = false;  // single-register IP
  options.check_bypass = false;          // no obligations declared
  core::TrojanDetector detector(ip, options);
  const core::DetectionReport report = detector.run();

  std::cout << report.summary() << "\n\n";
  if (report.trojan_found) {
    const auto& witness = *report.findings.front().check.witness;
    std::cout << "Trigger sequence found by BMC:\n"
              << witness.to_string(nl) << "\n";
    const auto trace = sim::replay_register(nl, witness, "config");
    std::cout << "config register over the replayed witness:";
    for (const auto& value : trace) std::cout << " 0x" << value.to_hex_string();
    std::cout << "\n(the final value 0xff was never written through a valid "
                 "way)\n";
  }
  return report.trojan_found ? 0 : 1;
}
