#!/usr/bin/env python3
"""Noise-aware regression gate for trojanscout-bench-v1 artifacts.

Compares a current BENCH_<name>.json (written by any bench binary's
--bench-out flag) against a committed baseline. A case regresses only when
its median slowdown exceeds BOTH a relative threshold and an absolute
floor, plus an allowance for the observed run-to-run noise:

    delta = current_median - baseline_median
    regressed  iff  delta > max(rel * baseline_median, abs_floor)
                            + noise_k * max(baseline_stddev, current_stddev)

The absolute floor keeps sub-millisecond cases (where scheduler jitter
dwarfs the work) from flapping; the stddev term absorbs machines whose
timings are honest but noisy. Cases only present on one side are reported
but never fail the gate (benches grow rows over time).

Usage: bench_compare.py BASELINE CURRENT [--rel=0.35] [--abs-floor=0.05]
                        [--noise-k=3.0]
       bench_compare.py --self-test
Exit codes: 0 = no regression, 1 = regression or invalid input.
"""

import json
import sys

DEFAULT_REL = 0.35
DEFAULT_ABS_FLOOR = 0.05
DEFAULT_NOISE_K = 3.0

SCHEMA = "trojanscout-bench-v1"


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return validate_artifact(doc, path)


def validate_artifact(doc, label):
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ValueError(f"{label}: not a {SCHEMA} artifact")
    cases = {}
    for case in doc.get("cases", []):
        for key in ("name", "runs", "median_seconds", "min_seconds",
                    "max_seconds", "stddev_seconds"):
            if key not in case:
                raise ValueError(f"{label}: case missing '{key}'")
        cases[case["name"]] = case
    return doc, cases


def compare(baseline_cases, current_cases, rel, abs_floor, noise_k, out=None):
    """Returns the list of regressed case names; prints a per-case report."""
    out = out or sys.stdout
    regressions = []
    for name in sorted(set(baseline_cases) | set(current_cases)):
        base = baseline_cases.get(name)
        cur = current_cases.get(name)
        if base is None:
            print(f"  new      {name} (no baseline)", file=out)
            continue
        if cur is None:
            print(f"  missing  {name} (in baseline only)", file=out)
            continue
        base_med = base["median_seconds"]
        cur_med = cur["median_seconds"]
        delta = cur_med - base_med
        noise = noise_k * max(base["stddev_seconds"], cur["stddev_seconds"])
        threshold = max(rel * base_med, abs_floor) + noise
        ratio = cur_med / base_med if base_med > 0 else float("inf")
        verdict = "REGRESSED" if delta > threshold else "ok"
        print(f"  {verdict:8s} {name}: {base_med:.4f}s -> {cur_med:.4f}s "
              f"({ratio:.2f}x, delta {delta:+.4f}s, "
              f"threshold {threshold:.4f}s)", file=out)
        if delta > threshold:
            regressions.append(name)
    return regressions


def make_case(name, median, stddev=0.0, runs=3):
    return {"name": name, "runs": runs, "median_seconds": median,
            "min_seconds": median - stddev, "max_seconds": median + stddev,
            "stddev_seconds": stddev}


def self_test():
    """The gate's own contract, runnable as a ctest."""
    rel, floor, k = DEFAULT_REL, DEFAULT_ABS_FLOOR, DEFAULT_NOISE_K

    # A clear 2.1x slowdown well above the absolute floor must fail.
    base = {"a": make_case("a", 1.0, stddev=0.02)}
    slow = {"a": make_case("a", 2.1, stddev=0.02)}
    if compare(base, slow, rel, floor, k) != ["a"]:
        print("self-test: 2.1x slowdown was not flagged", file=sys.stderr)
        return 1

    # Honest re-run noise (+4% with comparable stddev) must pass.
    rerun = {"a": make_case("a", 1.04, stddev=0.03)}
    if compare(base, rerun, rel, floor, k):
        print("self-test: 1.04x noise was flagged", file=sys.stderr)
        return 1

    # Sub-floor absolute deltas pass even at a large ratio (0.1ms -> 3ms):
    # cases this small are scheduler jitter, not signal.
    tiny_base = {"b": make_case("b", 0.0001)}
    tiny_slow = {"b": make_case("b", 0.003)}
    if compare(tiny_base, tiny_slow, rel, floor, k):
        print("self-test: sub-floor delta was flagged", file=sys.stderr)
        return 1

    # A noisy machine: 1.5x median but stddev covers it -> pass.
    noisy_base = {"c": make_case("c", 0.4, stddev=0.1)}
    noisy_cur = {"c": make_case("c", 0.6, stddev=0.1)}
    if compare(noisy_base, noisy_cur, rel, floor, k):
        print("self-test: stddev-covered delta was flagged", file=sys.stderr)
        return 1

    # The same 1.5x with tight stddevs -> fail (it is real).
    tight_base = {"c": make_case("c", 0.4, stddev=0.001)}
    tight_cur = {"c": make_case("c", 0.6, stddev=0.001)}
    if compare(tight_base, tight_cur, rel, floor, k) != ["c"]:
        print("self-test: tight-stddev 1.5x was not flagged", file=sys.stderr)
        return 1

    # Case-set drift (new/missing rows) never fails the gate.
    drift = {"d": make_case("d", 0.2)}
    if compare(base, drift, rel, floor, k):
        print("self-test: case-set drift was flagged", file=sys.stderr)
        return 1

    print("bench_compare self-test: OK")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = dict(a[2:].split("=", 1) for a in argv[1:]
                if a.startswith("--") and "=" in a)
    flags = {a[2:] for a in argv[1:] if a.startswith("--") and "=" not in a}

    if "self-test" in flags:
        return self_test()
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1

    rel = float(opts.get("rel", DEFAULT_REL))
    abs_floor = float(opts.get("abs-floor", DEFAULT_ABS_FLOOR))
    noise_k = float(opts.get("noise-k", DEFAULT_NOISE_K))

    try:
        baseline_doc, baseline_cases = load_artifact(args[0])
        current_doc, current_cases = load_artifact(args[1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 1

    print(f"bench_compare: {baseline_doc.get('bench')} "
          f"(baseline rev {baseline_doc.get('git_rev')} -> "
          f"current rev {current_doc.get('git_rev')})")
    regressions = compare(baseline_cases, current_cases, rel, abs_floor,
                          noise_k)
    if regressions:
        print(f"bench_compare: FAILED ({len(regressions)} regression(s): "
              f"{', '.join(regressions)})", file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
