#!/usr/bin/env python3
"""Validates trojanscout observability artifacts.

The file kind is auto-detected from its shape:
  * a JSON object with "traceEvents"      -> --trace-out Chrome trace
    (required event keys, monotone timestamps per tid, parent-id
    referential integrity, end-events matching an opened span);
  * "schema": "trojanscout-profile-v1"    -> --profile-out phase profile;
  * "schema": "trojanscout-bench-v1"      -> --bench-out history artifact;
  * "schema": "trojanscout-corpus-v1"     -> fuzz --out mutation corpus;
  * anything else                         -> --metrics-out JSON lines,
    where every line must be a standalone JSON object with a "type" field
    validated against the schemas below (emitters: core/telemetry_sink.cpp,
    telemetry/progress.cpp, bench/bench_common.hpp).

CI runs this over every artifact a quick audit + bench run produces, so a
schema drift between the C++ emitters and this file fails the build.

Usage: check_metrics.py FILE [FILE...]
Exit codes: 0 = all files valid, 1 = violation (details on stderr).
"""

import json
import sys

# type -> {field: python type(s)}. int covers both signed and unsigned
# emitter fields; bool is checked before int (bool is an int subclass).
SCHEMAS = {
    "obligation": {
        "design": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "cancelled": bool,
        "bound_reached": bool,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "sat_restarts": int,
        "sat_learned_clauses": int,
        "cnf_vars": int,
        "frame_clauses": list,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "atpg_implications": int,
        "atpg_frames_proven_clean": int,
        "atpg_frames_aborted": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    "summary": {
        "design": str,
        "engine": str,
        "trojan_found": bool,
        "findings": int,
        "certified_pseudo_critical": int,
        "obligations": int,
        "trust_bound_frames": int,
        "signature_fnv1a": int,
        "total_seconds": (int, float),
        "peak_rss_bytes": int,
        "peak_rss_hwm_bytes": int,
    },
    # One counter snapshot: arbitrary metric names, all numeric.
    "counters": {},
    "bench": {
        "bench": str,
        "row": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "bound_reached": bool,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "cnf_vars": int,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    "spec": {
        "design": str,
        "register": str,
        "ways": int,
        "obligations": int,
    },
    "scaling": {
        "workload": str,
        "jobs": int,
        "obligations": int,
        "deterministic": bool,
        "seconds": (int, float),
        "serial_seconds": (int, float),
    },
    # Stall-watchdog events appended from the --progress reporter.
    "stall": {
        "property": str,
        "at_frame": int,
        "progress_key": int,
        "stalled_seconds": (int, float),
    },
    # Verdict-cache snapshot appended by audits run with --cache-dir.
    "cache": {
        "dir": str,
        "mode": str,
        "hits": int,
        "misses": int,
        "stores": int,
        "evictions": int,
        "corrupt_skipped": int,
        "entries": int,
        "bytes": int,
    },
}


def check_field(record, key, expected):
    if key not in record:
        return f"missing field '{key}'"
    value = record[key]
    if expected is bool:
        if not isinstance(value, bool):
            return f"field '{key}' should be bool, got {type(value).__name__}"
        return None
    if isinstance(value, bool):  # bool passes isinstance(..., int); reject
        return f"field '{key}' should be {expected}, got bool"
    if not isinstance(value, expected):
        return f"field '{key}' has type {type(value).__name__}"
    return None


def check_line(lineno, line):
    errors = []
    try:
        record = json.loads(line)
    except json.JSONDecodeError as e:
        return [f"line {lineno}: invalid JSON: {e}"]
    if not isinstance(record, dict):
        return [f"line {lineno}: not a JSON object"]
    rtype = record.get("type")
    if rtype not in SCHEMAS:
        return [f"line {lineno}: unknown record type {rtype!r}"]
    # "type" must be the first key (insertion order is serialization order).
    if next(iter(record)) != "type":
        errors.append(f"line {lineno}: 'type' is not the first field")
    for key, expected in SCHEMAS[rtype].items():
        err = check_field(record, key, expected)
        if err:
            errors.append(f"line {lineno} ({rtype}): {err}")
    if rtype == "obligation":
        for v in record.get("frame_clauses", []):
            if not isinstance(v, int) or isinstance(v, bool):
                errors.append(
                    f"line {lineno} (obligation): frame_clauses entry "
                    f"{v!r} is not an integer")
                break
    if rtype == "counters":
        for key, value in record.items():
            if key == "type":
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(
                    f"line {lineno} (counters): metric '{key}' is not "
                    f"numeric")
    return errors


def check_trace(doc):
    """Chrome trace_event JSON from --trace-out (telemetry/span.cpp)."""
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    span_ids = set()
    last_ts = {}  # tid -> last timestamp seen in file order
    for i, ev in enumerate(events):
        label = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{label}: not an object")
            continue
        for key, expected in (("name", str), ("ph", str), ("ts", (int, float)),
                              ("pid", int), ("tid", int), ("args", dict)):
            err = check_field(ev, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            errors.append(f"{label}: ph {ph!r} is not 'B' or 'E'")
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            continue
        if not isinstance(args.get("span_id"), int):
            errors.append(f"{label}: args.span_id missing or not int")
            continue
        if ph == "B":
            span_ids.add(args["span_id"])
            if not isinstance(args.get("parent_id"), int):
                errors.append(f"{label}: begin event lacks int parent_id")
        tid = ev.get("tid")
        ts = ev.get("ts")
        if isinstance(tid, int) and isinstance(ts, (int, float)):
            if tid in last_ts and ts < last_ts[tid]:
                errors.append(
                    f"{label}: ts {ts} goes backwards on tid {tid} "
                    f"(previous {last_ts[tid]})")
            last_ts[tid] = ts
    # Referential integrity over the whole file: parents must exist
    # (parent_id 0 = root) and every end event must close an opened span.
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or not isinstance(ev.get("args"), dict):
            continue
        span_id = ev["args"].get("span_id")
        parent = ev["args"].get("parent_id")
        if ev.get("ph") == "B" and isinstance(parent, int) and parent != 0 \
                and parent not in span_ids:
            errors.append(f"event {i}: parent_id {parent} never begun")
        if ev.get("ph") == "E" and span_id not in span_ids:
            errors.append(f"event {i}: end of span {span_id} never begun")
    if not errors and not events:
        errors.append("trace has no events")
    return errors


def check_phase_list(phases, label):
    errors = []
    if not isinstance(phases, list):
        return [f"{label}: 'phases' is not a list"]
    for phase in phases:
        if not isinstance(phase, dict):
            errors.append(f"{label}: phase entry is not an object")
            continue
        for key, expected in (("name", str), ("count", int)):
            err = check_field(phase, key, expected)
            if err:
                errors.append(f"{label} phase: {err}")
        # inclusive_us / exclusive_us are timing fields: present in normal
        # output, stripped in jobs-invariance comparisons — allow both.
        for key in ("inclusive_us", "exclusive_us"):
            if key in phase and (isinstance(phase[key], bool)
                                 or not isinstance(phase[key], int)):
                errors.append(f"{label} phase: '{key}' is not an integer")
    return errors


def check_profile(doc):
    """--profile-out JSON (telemetry/profile.cpp), with or without timing."""
    errors = []
    errors.extend(check_phase_list(doc.get("phases"), "profile"))
    obligations = doc.get("obligations")
    if not isinstance(obligations, list):
        errors.append("'obligations' is not a list")
        obligations = []
    for ob in obligations:
        if not isinstance(ob, dict) or not isinstance(ob.get("name"), str):
            errors.append("obligation entry lacks a string 'name'")
            continue
        errors.extend(
            check_phase_list(ob.get("phases", []), f"obligation {ob['name']}"))
    timers = doc.get("timers")
    if not isinstance(timers, list):
        errors.append("'timers' is not a list")
        timers = []
    for timer in timers:
        if not isinstance(timer, dict):
            errors.append("timer entry is not an object")
            continue
        for key, expected in (("name", str), ("count", int)):
            err = check_field(timer, key, expected)
            if err:
                errors.append(f"timer: {err}")
    return errors


def check_bench(doc):
    """--bench-out history artifact (bench/bench_common.cpp)."""
    errors = []
    for key, expected in (("bench", str), ("git_rev", str),
                          ("machine", dict), ("cases", list)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    machine = doc.get("machine")
    if isinstance(machine, dict):
        for key, expected in (("hostname", str), ("hardware_threads", int),
                              ("page_size", int)):
            err = check_field(machine, key, expected)
            if err:
                errors.append(f"machine: {err}")
    for case in doc.get("cases", []) if isinstance(doc.get("cases"), list) \
            else []:
        if not isinstance(case, dict):
            errors.append("case entry is not an object")
            continue
        for key, expected in (("name", str), ("runs", int),
                              ("median_seconds", (int, float)),
                              ("min_seconds", (int, float)),
                              ("max_seconds", (int, float)),
                              ("stddev_seconds", (int, float))):
            err = check_field(case, key, expected)
            if err:
                errors.append(f"case {case.get('name', '?')}: {err}")
        if isinstance(case.get("runs"), int) and case["runs"] < 1:
            errors.append(f"case {case.get('name', '?')}: runs < 1")
    # The service-throughput bench must always emit its full case set —
    # a silently missing phase (e.g. every warm submit failed) would
    # otherwise slip past the bench_compare gate as "no regression".
    if doc.get("bench") == "service_throughput":
        required = {"cold/audit", "warm/p50", "warm/p99", "warm/mean",
                    "mixed/p50", "mixed/p99", "mixed/mean"}
        names = {case.get("name") for case in doc.get("cases", [])
                 if isinstance(case, dict)}
        for missing in sorted(required - names):
            errors.append(f"service_throughput: case '{missing}' missing")
    return errors


def check_corpus(doc):
    """fuzz --out corpus artifact (src/fuzz/harness.cpp), with or without
    the timing block (stripped in jobs-invariance comparisons)."""
    errors = []
    for key, expected in (("seed", int), ("engine", str), ("count", int),
                          ("clean", list), ("variants", list),
                          ("summary", dict)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    for leg in doc.get("clean", []) if isinstance(doc.get("clean"), list) \
            else []:
        if not isinstance(leg, dict):
            errors.append("clean entry is not an object")
            continue
        for key, expected in (("family", str), ("scanned", bool),
                              ("frames", int), ("obligations", int),
                              ("pass", bool)):
            err = check_field(leg, key, expected)
            if err:
                errors.append(f"clean {leg.get('family', '?')}: {err}")
    detected = 0
    reachable = 0
    variants = doc.get("variants")
    for v in variants if isinstance(variants, list) else []:
        if not isinstance(v, dict):
            errors.append("variant entry is not an object")
            continue
        label = f"variant {v.get('name', '?')}"
        for key, expected in (("name", str), ("family", str),
                              ("trigger", dict), ("payload", dict),
                              ("deep", bool), ("frames", int),
                              ("reachable", bool), ("detected", bool),
                              ("deterministic", bool), ("ok", bool)):
            err = check_field(v, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        trigger = v.get("trigger")
        if isinstance(trigger, dict):
            for key, expected in (("kind", str), ("width", int),
                                  ("sequence_length", int), ("pattern", str),
                                  ("insertion_point", int)):
                err = check_field(trigger, key, expected)
                if err:
                    errors.append(f"{label} trigger: {err}")
        payload = v.get("payload")
        if isinstance(payload, dict):
            for key, expected in (("style", str), ("target", str),
                                  ("param", str)):
                err = check_field(payload, key, expected)
                if err:
                    errors.append(f"{label} payload: {err}")
        if v.get("detected") is True:
            detected += 1
            for key, expected in (("property", str),
                                  ("witness_confirmed", bool)):
                err = check_field(v, key, expected)
                if err:
                    errors.append(f"{label}: {err}")
        if v.get("reachable") is True:
            reachable += 1
        if v.get("ok") is False and not isinstance(v.get("failure"), str):
            errors.append(f"{label}: failing variant lacks 'failure'")
    summary = doc.get("summary")
    if isinstance(summary, dict):
        for key, expected in (("reachable", int), ("detected", int),
                              ("missed", int), ("false_positives", int),
                              ("harness_failures", int),
                              ("detection_rate", (int, float))):
            err = check_field(summary, key, expected)
            if err:
                errors.append(f"summary: {err}")
        rate = summary.get("detection_rate")
        if isinstance(rate, (int, float)) and not isinstance(rate, bool) \
                and not 0.0 <= rate <= 1.0:
            errors.append(f"summary: detection_rate {rate} outside [0, 1]")
        if summary.get("detected") != detected:
            errors.append(
                f"summary: detected {summary.get('detected')} != "
                f"{detected} detected variants")
        if summary.get("reachable") != reachable:
            errors.append(
                f"summary: reachable {summary.get('reachable')} != "
                f"{reachable} reachable variants")
    if isinstance(doc.get("count"), int) and isinstance(variants, list) \
            and doc["count"] != len(variants):
        errors.append(f"count {doc['count']} != {len(variants)} variants")
    timing = doc.get("timing")
    if timing is not None:
        if not isinstance(timing, dict):
            errors.append("'timing' is not an object")
        else:
            for key, expected in (("jobs", int),
                                  ("engine_quantiles", list),
                                  ("total_seconds", (int, float))):
                err = check_field(timing, key, expected)
                if err:
                    errors.append(f"timing: {err}")
            for q in timing.get("engine_quantiles", []) \
                    if isinstance(timing.get("engine_quantiles"), list) \
                    else []:
                if not isinstance(q, dict):
                    errors.append("timing: quantile entry is not an object")
                    continue
                for key, expected in (("engine", str), ("samples", int),
                                      ("p50_seconds", (int, float)),
                                      ("p90_seconds", (int, float)),
                                      ("p99_seconds", (int, float)),
                                      ("total_seconds", (int, float))):
                    err = check_field(q, key, expected)
                    if err:
                        errors.append(f"timing quantile: {err}")
    return errors


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{path}: {e}"]
    if not text.strip():
        return [f"{path}: empty file"]

    # Single-document artifacts (trace / profile / bench) parse as one JSON
    # object; --metrics-out files are one object per line.
    doc = None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        pass
    if isinstance(doc, dict) and "traceEvents" in doc:
        return [f"{path} (trace): {e}" for e in check_trace(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-profile-v1":
        return [f"{path} (profile): {e}" for e in check_profile(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-bench-v1":
        return [f"{path} (bench): {e}" for e in check_bench(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-corpus-v1":
        return [f"{path} (corpus): {e}" for e in check_corpus(doc)]
    if isinstance(doc, dict) and "schema" in doc:
        return [f"{path}: unknown schema {doc['schema']!r}"]

    for lineno, line in enumerate(text.splitlines(), start=1):
        errors.extend(f"{path}: {e}" for e in check_line(lineno, line))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    if all_errors:
        print(f"check_metrics: FAILED ({len(all_errors)} violations)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({len(argv) - 1} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
