#!/usr/bin/env python3
"""Validates a trojanscout --metrics-out JSON-lines file.

Every line must be a standalone JSON object with a "type" field; each type
has a required-field schema below (emitters: core/telemetry_sink.cpp and
bench/bench_common.hpp). CI runs this over the BENCH_table*.json artifacts,
so a schema drift between the C++ emitters and this file fails the build.

Usage: check_metrics.py FILE [FILE...]
Exit codes: 0 = all files valid, 1 = violation (details on stderr).
"""

import json
import sys

# type -> {field: python type(s)}. int covers both signed and unsigned
# emitter fields; bool is checked before int (bool is an int subclass).
SCHEMAS = {
    "obligation": {
        "design": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "cancelled": bool,
        "bound_reached": bool,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "sat_restarts": int,
        "sat_learned_clauses": int,
        "cnf_vars": int,
        "frame_clauses": list,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "atpg_implications": int,
        "atpg_frames_proven_clean": int,
        "atpg_frames_aborted": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    "summary": {
        "design": str,
        "engine": str,
        "trojan_found": bool,
        "findings": int,
        "certified_pseudo_critical": int,
        "obligations": int,
        "trust_bound_frames": int,
        "signature_fnv1a": int,
        "total_seconds": (int, float),
        "peak_rss_bytes": int,
        "peak_rss_hwm_bytes": int,
    },
    # One counter snapshot: arbitrary metric names, all numeric.
    "counters": {},
    "bench": {
        "bench": str,
        "row": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "bound_reached": bool,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "cnf_vars": int,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    "spec": {
        "design": str,
        "register": str,
        "ways": int,
        "obligations": int,
    },
    "scaling": {
        "workload": str,
        "jobs": int,
        "obligations": int,
        "deterministic": bool,
        "seconds": (int, float),
        "serial_seconds": (int, float),
    },
}


def check_field(record, key, expected):
    if key not in record:
        return f"missing field '{key}'"
    value = record[key]
    if expected is bool:
        if not isinstance(value, bool):
            return f"field '{key}' should be bool, got {type(value).__name__}"
        return None
    if isinstance(value, bool):  # bool passes isinstance(..., int); reject
        return f"field '{key}' should be {expected}, got bool"
    if not isinstance(value, expected):
        return f"field '{key}' has type {type(value).__name__}"
    return None


def check_line(lineno, line):
    errors = []
    try:
        record = json.loads(line)
    except json.JSONDecodeError as e:
        return [f"line {lineno}: invalid JSON: {e}"]
    if not isinstance(record, dict):
        return [f"line {lineno}: not a JSON object"]
    rtype = record.get("type")
    if rtype not in SCHEMAS:
        return [f"line {lineno}: unknown record type {rtype!r}"]
    # "type" must be the first key (insertion order is serialization order).
    if next(iter(record)) != "type":
        errors.append(f"line {lineno}: 'type' is not the first field")
    for key, expected in SCHEMAS[rtype].items():
        err = check_field(record, key, expected)
        if err:
            errors.append(f"line {lineno} ({rtype}): {err}")
    if rtype == "obligation":
        for v in record.get("frame_clauses", []):
            if not isinstance(v, int) or isinstance(v, bool):
                errors.append(
                    f"line {lineno} (obligation): frame_clauses entry "
                    f"{v!r} is not an integer")
                break
    if rtype == "counters":
        for key, value in record.items():
            if key == "type":
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(
                    f"line {lineno} (counters): metric '{key}' is not "
                    f"numeric")
    return errors


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: {e}"]
    if not lines:
        errors.append(f"{path}: empty file")
    for lineno, line in enumerate(lines, start=1):
        errors.extend(f"{path}: {e}" for e in check_line(lineno, line))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    if all_errors:
        print(f"check_metrics: FAILED ({len(all_errors)} violations)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({len(argv) - 1} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
