#!/usr/bin/env python3
"""Validates trojanscout observability artifacts.

The file kind is auto-detected from its shape:
  * a JSON object with "traceEvents"      -> --trace-out Chrome trace
    (required event keys, monotone timestamps per tid, parent-id
    referential integrity, end-events matching an opened span);
  * "schema": "trojanscout-profile-v1"    -> --profile-out phase profile;
  * "schema": "trojanscout-bench-v1"      -> --bench-out history artifact;
  * "schema": "trojanscout-corpus-v1"     -> fuzz --out mutation corpus;
  * "schema": "trojanscout-flight-v1"     -> audit --flight-out per-frame
    search-counter windows;
  * first line starting with "# TYPE"     -> Prometheus text exposition
    (submit --metrics output: TYPE before samples, counter families end
    in _total, histogram buckets strictly increasing / cumulative with
    the +Inf bucket equal to _count);
  * a JSON object with "type": "stats"    -> daemon / fleet stats reply
    (submit --stats --json output; against a coordinator, the merged
    telemetry must equal the exact sum of the per-worker snapshots, and
    the sampler/series/slo blocks must be well-formed);
  * first line "type": "header" carrying
    "schema": "trojanscout-events-v1"     -> --events-out structured event
    log (known event types, required per-type fields, strictly
    increasing seq from 0);
  * anything else                         -> --metrics-out JSON lines,
    where every line must be a standalone JSON object with a "type" field
    validated against the schemas below (emitters: core/telemetry_sink.cpp,
    telemetry/progress.cpp, bench/bench_common.hpp).

CI runs this over every artifact a quick audit + bench run produces, so a
schema drift between the C++ emitters and this file fails the build.

Usage: check_metrics.py FILE [FILE...]
       check_metrics.py --diff-exposition BEFORE AFTER
       check_metrics.py --self-test

--diff-exposition validates two scrapes of the same target taken in that
order: every counter and histogram count present in BEFORE must still be
present in AFTER with a value >= BEFORE's — cumulative families never go
backwards over a daemon's lifetime, so a shrinking counter means the
scrape hit a restarted or different process.

Exit codes: 0 = all files valid, 1 = violation (details on stderr).
"""

import json
import math
import sys

# type -> {field: python type(s)}. int covers both signed and unsigned
# emitter fields; bool is checked before int (bool is an int subclass).
SCHEMAS = {
    "obligation": {
        "design": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "cancelled": bool,
        "bound_reached": bool,
        "proven_unbounded": bool,
        "engine_used": str,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "sat_restarts": int,
        "sat_learned_clauses": int,
        "cnf_vars": int,
        "frame_clauses": list,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "atpg_implications": int,
        "atpg_frames_proven_clean": int,
        "atpg_frames_aborted": int,
        "pdr_frames": int,
        "pdr_pushed_clauses": int,
        "pdr_ctis": int,
        "pdr_obligations": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    # One record per --engine portfolio race. The winner is deterministic;
    # the per-leg breakdown ("bmc.status", "bmc.seconds", ...) is
    # timing-flagged and therefore absent from timing-stripped reports, so
    # only the deterministic core is required here.
    "portfolio": {
        "design": str,
        "property": str,
        "winner": str,
    },
    "summary": {
        "design": str,
        "engine": str,
        "trojan_found": bool,
        "findings": int,
        "certified_pseudo_critical": int,
        "obligations": int,
        "trust_bound_frames": int,
        "signature_fnv1a": int,
        "total_seconds": (int, float),
        "peak_rss_bytes": int,
        "peak_rss_hwm_bytes": int,
    },
    # One counter snapshot: arbitrary metric names, all numeric.
    "counters": {},
    "bench": {
        "bench": str,
        "row": str,
        "engine": str,
        "property": str,
        "status": str,
        "violated": bool,
        "bound_reached": bool,
        "frames_completed": int,
        "sat_decisions": int,
        "sat_propagations": int,
        "sat_conflicts": int,
        "cnf_vars": int,
        "atpg_decisions": int,
        "atpg_backtracks": int,
        "seconds": (int, float),
        "memory_bytes": int,
    },
    "spec": {
        "design": str,
        "register": str,
        "ways": int,
        "obligations": int,
    },
    "scaling": {
        "workload": str,
        "jobs": int,
        "obligations": int,
        "deterministic": bool,
        "seconds": (int, float),
        "serial_seconds": (int, float),
    },
    # Stall-watchdog events appended from the --progress reporter.
    "stall": {
        "property": str,
        "at_frame": int,
        "progress_key": int,
        "stalled_seconds": (int, float),
    },
    # Verdict-cache snapshot appended by audits run with --cache-dir.
    "cache": {
        "dir": str,
        "mode": str,
        "hits": int,
        "misses": int,
        "stores": int,
        "evictions": int,
        "corrupt_skipped": int,
        "entries": int,
        "bytes": int,
    },
}


def check_field(record, key, expected):
    if key not in record:
        return f"missing field '{key}'"
    value = record[key]
    if expected is bool:
        if not isinstance(value, bool):
            return f"field '{key}' should be bool, got {type(value).__name__}"
        return None
    if isinstance(value, bool):  # bool passes isinstance(..., int); reject
        return f"field '{key}' should be {expected}, got bool"
    if not isinstance(value, expected):
        return f"field '{key}' has type {type(value).__name__}"
    return None


def check_line(lineno, line):
    errors = []
    try:
        record = json.loads(line)
    except json.JSONDecodeError as e:
        return [f"line {lineno}: invalid JSON: {e}"]
    if not isinstance(record, dict):
        return [f"line {lineno}: not a JSON object"]
    rtype = record.get("type")
    if rtype not in SCHEMAS:
        return [f"line {lineno}: unknown record type {rtype!r}"]
    # "type" must be the first key (insertion order is serialization order).
    if next(iter(record)) != "type":
        errors.append(f"line {lineno}: 'type' is not the first field")
    for key, expected in SCHEMAS[rtype].items():
        err = check_field(record, key, expected)
        if err:
            errors.append(f"line {lineno} ({rtype}): {err}")
    if rtype == "obligation":
        for v in record.get("frame_clauses", []):
            if not isinstance(v, int) or isinstance(v, bool):
                errors.append(
                    f"line {lineno} (obligation): frame_clauses entry "
                    f"{v!r} is not an integer")
                break
    if rtype == "portfolio":
        if record.get("winner") not in ("bmc", "atpg", "pdr"):
            errors.append(
                f"line {lineno} (portfolio): winner "
                f"{record.get('winner')!r} is not a concrete engine")
    if rtype == "counters":
        for key, value in record.items():
            if key == "type":
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(
                    f"line {lineno} (counters): metric '{key}' is not "
                    f"numeric")
    return errors


# --events-out structured event log (telemetry/events.cpp): event type ->
# required fields. Emitters may add fields; these must be present and typed.
EVENTS_SCHEMA_NAME = "trojanscout-events-v1"
EVENT_SCHEMAS = {
    "header": {"schema": str, "pid": int},
    "worker_up": {"endpoint": str},
    "worker_down": {"endpoint": str, "reason": str},
    "worker_evicted": {"endpoint": str, "live": int},
    "worker_rejoined": {"endpoint": str, "live": int},
    "reshard": {"job": str, "obligations": int},
    "retry_after": {"job": str, "worker": str, "outstanding": int,
                    "requested": int, "retry_after_ms": int},
    "claim_steal": {"key": str, "age_s": (int, float)},
    "cache_corrupt_skip": {"key": str, "dir": str},
    # SLO deadline breach (fleet/coordinator.cpp): scope "job" carries the
    # whole-job overrun, scope "obligation" additionally names the worker
    # and property that blew the per-obligation budget.
    "slo_breach": {"job": str, "scope": str, "elapsed_ms": (int, float),
                   "slo_ms": (int, float)},
}

# telemetry::Registry::kHistogramBuckets (log2-microsecond buckets).
HISTOGRAM_BUCKETS = 40


def is_events_stream(text):
    """True when the first line is a trojanscout-events-v1 header record."""
    lines = text.splitlines()
    if not lines:
        return False
    try:
        record = json.loads(lines[0])
    except json.JSONDecodeError:
        return False
    return isinstance(record, dict) and record.get("type") == "header" \
        and record.get("schema") == EVENTS_SCHEMA_NAME


def check_events(text):
    """--events-out JSONL stream (telemetry/events.cpp)."""
    errors = []
    # The sink serializes every record under one mutex and numbers it from
    # 0, so seq must be contiguous — a gap means a record was lost between
    # emit() and the file.
    expected_seq = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: invalid JSON: {e}")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        rtype = record.get("type")
        if rtype not in EVENT_SCHEMAS:
            errors.append(f"line {lineno}: unknown event type {rtype!r}")
            continue
        if next(iter(record)) != "type":
            errors.append(f"line {lineno}: 'type' is not the first field")
        if (lineno == 1) != (rtype == "header"):
            errors.append(f"line {lineno}: header record must be exactly "
                          f"the first line")
        for key, expected in (("seq", int), ("ts_ms", int)):
            err = check_field(record, key, expected)
            if err:
                errors.append(f"line {lineno} ({rtype}): {err}")
        seq = record.get("seq")
        if seq != expected_seq:
            errors.append(f"line {lineno}: seq {seq!r} != expected "
                          f"{expected_seq}")
        if isinstance(seq, int) and not isinstance(seq, bool):
            expected_seq = seq + 1  # resync so one gap reports one error
        else:
            expected_seq += 1
        for key, expected in EVENT_SCHEMAS[rtype].items():
            err = check_field(record, key, expected)
            if err:
                errors.append(f"line {lineno} ({rtype}): {err}")
        if rtype == "slo_breach":
            scope = record.get("scope")
            if scope not in ("job", "obligation"):
                errors.append(f"line {lineno} (slo_breach): scope "
                              f"{scope!r} is not 'job' or 'obligation'")
            if scope == "obligation":
                for key, expected in (("worker", str), ("property", str)):
                    err = check_field(record, key, expected)
                    if err:
                        errors.append(f"line {lineno} (slo_breach): {err}")
        if rtype == "header" and record.get("schema") != EVENTS_SCHEMA_NAME:
            errors.append(f"line {lineno}: unknown events schema "
                          f"{record.get('schema')!r}")
    return errors


def check_snapshot(snapshot, label):
    """One telemetry::Registry snapshot (service/telemetry_wire.cpp)."""
    errors = []
    if not isinstance(snapshot, dict):
        return [f"{label}: snapshot is not an object"]
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{label}: 'counters' is not an object")
    else:
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                errors.append(f"{label}: counter '{name}' is not an integer")
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, dict):
        errors.append(f"{label}: 'histograms' is not an object")
        return errors
    for name, hist in histograms.items():
        hlabel = f"{label} histogram '{name}'"
        if not isinstance(hist, dict):
            errors.append(f"{hlabel}: not an object")
            continue
        for key, expected in (("count", int), ("sum_s", (int, float)),
                              ("min_s", (int, float)),
                              ("max_s", (int, float)), ("buckets", list)):
            err = check_field(hist, key, expected)
            if err:
                errors.append(f"{hlabel}: {err}")
        buckets = hist.get("buckets")
        if isinstance(buckets, list):
            if len(buckets) != HISTOGRAM_BUCKETS:
                errors.append(f"{hlabel}: {len(buckets)} buckets != "
                              f"{HISTOGRAM_BUCKETS}")
            if any(isinstance(b, bool) or not isinstance(b, int)
                   for b in buckets):
                errors.append(f"{hlabel}: non-integer bucket")
    return errors


def check_merged_telemetry(merged, worker_snapshots):
    """The coordinator's merged snapshot must be the exact sum of the
    per-worker snapshots it reports alongside: counters summed by name,
    histogram counts and buckets added element-wise (src/service/
    telemetry_wire.cpp merge_snapshot)."""
    errors = []
    want_counters = {}
    want_hist = {}
    for snapshot in worker_snapshots:
        for name, value in snapshot.get("counters", {}).items():
            want_counters[name] = want_counters.get(name, 0) + value
        for name, hist in snapshot.get("histograms", {}).items():
            if hist.get("count", 0) == 0:
                continue  # merge_snapshot skips empty histograms
            agg = want_hist.setdefault(
                name, {"count": 0, "sum_s": 0.0,
                       "buckets": [0] * HISTOGRAM_BUCKETS})
            agg["count"] += hist["count"]
            agg["sum_s"] += hist["sum_s"]
            agg["buckets"] = [a + b for a, b
                              in zip(agg["buckets"], hist["buckets"])]
    got_counters = merged.get("counters", {})
    for name, want in sorted(want_counters.items()):
        if got_counters.get(name) != want:
            errors.append(f"merged counter '{name}' = "
                          f"{got_counters.get(name)!r}, workers sum to "
                          f"{want}")
    for name in sorted(set(got_counters) - set(want_counters)):
        if got_counters[name] != 0:
            errors.append(f"merged counter '{name}' has no worker source")
    got_hist = merged.get("histograms", {})
    for name in sorted(set(want_hist) | set(got_hist)):
        want = want_hist.get(name)
        got = got_hist.get(name)
        if want is None:
            if got.get("count", 0) != 0:
                errors.append(f"merged histogram '{name}' has no worker "
                              f"source")
            continue
        if got is None:
            errors.append(f"merged telemetry lacks histogram '{name}'")
            continue
        if got.get("count") != want["count"]:
            errors.append(f"merged histogram '{name}' count "
                          f"{got.get('count')!r} != workers sum "
                          f"{want['count']}")
        if got.get("buckets") != want["buckets"]:
            errors.append(f"merged histogram '{name}' buckets are not the "
                          f"element-wise sum of the workers' buckets")
        # sum_s crossed a %.17g round-trip once more than the addends did.
        if not math.isclose(got.get("sum_s", 0.0), want["sum_s"],
                            rel_tol=1e-9, abs_tol=1e-9):
            errors.append(f"merged histogram '{name}' sum_s "
                          f"{got.get('sum_s')!r} != workers sum "
                          f"{want['sum_s']!r}")
    return errors


def check_series(series, label):
    """The "series" block of a stats reply: sampled windows, oldest first
    (service/telemetry_wire.cpp series_to_json)."""
    errors = []
    if not isinstance(series, list):
        return [f"{label}: not a list"]
    previous_seq = None
    for i, window in enumerate(series):
        wlabel = f"{label}[{i}]"
        if not isinstance(window, dict):
            errors.append(f"{wlabel}: not an object")
            continue
        for key, expected in (("seq", int), ("t_ms", int),
                              ("span_s", (int, float)), ("counters", dict),
                              ("histograms", dict)):
            err = check_field(window, key, expected)
            if err:
                errors.append(f"{wlabel}: {err}")
        seq = window.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if previous_seq is not None and seq != previous_seq + 1:
                errors.append(f"{wlabel}: seq {seq} does not follow "
                              f"{previous_seq}")
            previous_seq = seq
        for name, entry in window.get("counters", {}).items() \
                if isinstance(window.get("counters"), dict) else []:
            if not isinstance(entry, dict):
                errors.append(f"{wlabel}: counter '{name}' is not an object")
                continue
            for key in ("delta", "rate_per_s"):
                err = check_field(entry, key, (int, float))
                if err:
                    errors.append(f"{wlabel} counter '{name}': {err}")
        for name, entry in window.get("histograms", {}).items() \
                if isinstance(window.get("histograms"), dict) else []:
            if not isinstance(entry, dict):
                errors.append(f"{wlabel}: histogram '{name}' is not an "
                              f"object")
                continue
            for key in ("count", "sum_s", "p50_s", "p90_s", "p99_s"):
                err = check_field(entry, key, (int, float))
                if err:
                    errors.append(f"{wlabel} histogram '{name}': {err}")
            quantiles = [entry.get(k) for k in ("p50_s", "p90_s", "p99_s")]
            if all(isinstance(q, (int, float)) and not isinstance(q, bool)
                   for q in quantiles) and not (
                       quantiles[0] <= quantiles[1] <= quantiles[2]):
                errors.append(f"{wlabel} histogram '{name}': quantiles "
                              f"{quantiles} are not monotone")
    return errors


def check_slowest(slowest, label):
    """Tail-attribution table rows (fleet stats reply / report line)."""
    errors = []
    if not isinstance(slowest, list):
        return [f"{label}: not a list"]
    previous = None
    for i, row in enumerate(slowest):
        rlabel = f"{label}[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{rlabel}: not an object")
            continue
        for key, expected in (("property", str), ("worker", str),
                              ("total_us", int), ("phases", dict)):
            err = check_field(row, key, expected)
            if err:
                errors.append(f"{rlabel}: {err}")
        for name, us in row.get("phases", {}).items() \
                if isinstance(row.get("phases"), dict) else []:
            if isinstance(us, bool) or not isinstance(us, int):
                errors.append(f"{rlabel}: phase '{name}' is not an integer")
        total = row.get("total_us")
        if isinstance(total, int) and not isinstance(total, bool):
            if previous is not None and total > previous:
                errors.append(f"{rlabel}: total_us {total} out of "
                              f"descending order (previous {previous})")
            previous = total
    return errors


def check_stats(doc):
    """A daemon or fleet stats reply (submit --stats --json output)."""
    errors = []
    for key, expected in (("endpoint", str), ("pid", int),
                          ("uptime_s", (int, float)),
                          ("jobs_completed", int), ("bad_requests", int)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    if "telemetry" in doc:
        errors.extend(check_snapshot(doc["telemetry"], "telemetry"))
    if "coordinator_telemetry" in doc:
        errors.extend(check_snapshot(doc["coordinator_telemetry"],
                                     "coordinator_telemetry"))
    if "slowest" in doc:
        errors.extend(check_slowest(doc["slowest"], "slowest"))
    if "uptime_ms" in doc:
        err = check_field(doc, "uptime_ms", int)
        if err:
            errors.append(err)
    sampler = doc.get("sampler")
    if sampler is not None:
        if not isinstance(sampler, dict):
            errors.append("'sampler' is not an object")
        else:
            for key, expected in (("enabled", bool),
                                  ("interval_ms", (int, float)),
                                  ("samples", int), ("last_age_ms", int)):
                err = check_field(sampler, key, expected)
                if err:
                    errors.append(f"sampler: {err}")
    if "series" in doc:
        errors.extend(check_series(doc["series"], "series"))
    slo = doc.get("slo")
    if slo is not None:
        if not isinstance(slo, dict):
            errors.append("'slo' is not an object")
        else:
            for key, expected in (("job_ms", (int, float)),
                                  ("obligation_ms", (int, float)),
                                  ("job_breaches", int),
                                  ("obligation_breaches", int)):
                err = check_field(slo, key, expected)
                if err:
                    errors.append(f"slo: {err}")
    workers = doc.get("workers")
    if workers is None:
        return errors  # single-daemon reply: no fan-out to cross-check
    if not isinstance(workers, list):
        return errors + ["'workers' is not a list"]
    snapshots = []
    for i, worker in enumerate(workers):
        label = f"worker {i}"
        if not isinstance(worker, dict):
            errors.append(f"{label}: not an object")
            continue
        for key, expected in (("endpoint", str), ("alive", bool),
                              ("outstanding", int)):
            err = check_field(worker, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        if "responding" in worker:
            err = check_field(worker, "responding", bool)
            if err:
                errors.append(f"{label}: {err}")
            if worker["responding"] is False and "telemetry" in worker:
                errors.append(f"{label}: unresponsive worker still carries "
                              f"a telemetry snapshot")
        if "telemetry" in worker:
            errors.extend(check_snapshot(worker["telemetry"], label))
            snapshots.append(worker["telemetry"])
    if not errors and isinstance(doc.get("telemetry"), dict):
        errors.extend(check_merged_telemetry(doc["telemetry"], snapshots))
    return errors


def is_exposition(text):
    """True when the first non-empty line is a Prometheus # TYPE comment."""
    for line in text.splitlines():
        if line.strip():
            return line.startswith("# TYPE ")
    return False


def parse_exposition(text):
    """Parses Prometheus text exposition (format 0.0.4) enforcing the
    invariants the C++ renderer guarantees (service/exposition.cpp).
    Returns (families, errors); families maps family name ->
    {"type": ..., "samples": [(full_name, labels_str, value), ...]}."""
    errors = []
    families = {}
    sample_owner = {}  # metric base name -> family name

    def family_of(name):
        if name in sample_owner:
            return sample_owner[name]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in sample_owner:
                owner = sample_owner[name[:-len(suffix)]]
                if families[owner]["type"] == "histogram":
                    return owner
        return None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE comment")
                continue
            name, ftype = parts[2], parts[3]
            if ftype not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: unknown family type "
                              f"{ftype!r}")
                continue
            if name in families:
                errors.append(f"line {lineno}: duplicate TYPE for "
                              f"'{name}'")
                continue
            if ftype == "counter" and not name.endswith("_total"):
                errors.append(f"line {lineno}: counter family '{name}' "
                              f"does not end in _total")
            families[name] = {"type": ftype, "samples": []}
            sample_owner[name] = name
            continue
        if line.startswith("#"):
            continue  # other comments are legal noise
        # Sample line: name[{labels}] value
        body = line.strip()
        brace = body.find("{")
        if brace >= 0:
            close = body.rfind("}")
            if close < brace:
                errors.append(f"line {lineno}: unbalanced labels")
                continue
            name = body[:brace]
            labels = body[brace + 1:close]
            rest = body[close + 1:].split()
        else:
            fields = body.split()
            if len(fields) < 2:
                errors.append(f"line {lineno}: sample lacks a value")
                continue
            name, labels, rest = fields[0], "", fields[1:]
        if not rest:
            errors.append(f"line {lineno}: sample lacks a value")
            continue
        try:
            value = float(rest[0])
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {rest[0]!r}")
            continue
        owner = family_of(name)
        if owner is None:
            errors.append(f"line {lineno}: sample '{name}' precedes its "
                          f"TYPE comment")
            continue
        families[owner]["samples"].append((name, labels, value))

    # Histogram shape: strictly increasing le, cumulative counts, a +Inf
    # bucket equal to _count, and both _sum and _count present.
    for name, family in families.items():
        if not family["samples"]:
            errors.append(f"family '{name}' declared but never sampled")
        if family["type"] == "counter":
            for sample_name, _, value in family["samples"]:
                if value < 0:
                    errors.append(f"counter '{sample_name}' is negative")
        if family["type"] != "histogram":
            continue
        buckets = []
        count = None
        has_sum = False
        for sample_name, labels, value in family["samples"]:
            if sample_name == name + "_bucket":
                le = None
                for part in labels.split(","):
                    if part.startswith("le="):
                        raw = part[3:].strip('"')
                        le = math.inf if raw == "+Inf" else float(raw)
                if le is None:
                    errors.append(f"histogram '{name}': bucket without le")
                    continue
                buckets.append((le, value))
            elif sample_name == name + "_count":
                count = value
            elif sample_name == name + "_sum":
                has_sum = True
        if count is None or not has_sum:
            errors.append(f"histogram '{name}': missing _count or _sum")
        for i in range(1, len(buckets)):
            if buckets[i][0] <= buckets[i - 1][0]:
                errors.append(f"histogram '{name}': le bounds not strictly "
                              f"increasing")
                break
            if buckets[i][1] < buckets[i - 1][1]:
                errors.append(f"histogram '{name}': bucket counts not "
                              f"cumulative")
                break
        if not buckets or not math.isinf(buckets[-1][0]):
            errors.append(f"histogram '{name}': missing +Inf bucket")
        elif count is not None and buckets[-1][1] != count:
            errors.append(f"histogram '{name}': +Inf bucket "
                          f"{buckets[-1][1]} != _count {count}")
    return families, errors


def check_exposition(text):
    return parse_exposition(text)[1]


def diff_expositions(before_text, after_text):
    """Cumulative families from two scrapes of one live process, taken in
    that order: every counter / histogram count in BEFORE must be present
    and >= in AFTER."""
    before, errors_a = parse_exposition(before_text)
    after, errors_b = parse_exposition(after_text)
    errors = [f"before: {e}" for e in errors_a]
    errors += [f"after: {e}" for e in errors_b]
    if errors:
        return errors

    def cumulative_samples(families):
        out = {}
        for name, family in families.items():
            if family["type"] == "counter":
                for sample_name, labels, value in family["samples"]:
                    out[f"{sample_name}{{{labels}}}"] = value
            elif family["type"] == "histogram":
                for sample_name, labels, value in family["samples"]:
                    if sample_name == name + "_count":
                        out[f"{sample_name}{{{labels}}}"] = value
        return out

    want = cumulative_samples(before)
    got = cumulative_samples(after)
    for key, old in sorted(want.items()):
        if key not in got:
            errors.append(f"'{key}' present before, missing after")
        elif got[key] < old:
            errors.append(f"'{key}' went backwards: {old} -> {got[key]} "
                          f"(scrape hit a restarted process?)")
    return errors


def check_flight(doc):
    """audit --flight-out per-frame search-counter windows."""
    errors = []
    for key, expected in (("design", str), ("engine", str), ("runs", list)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    for run in doc.get("runs", []) if isinstance(doc.get("runs"), list) \
            else []:
        if not isinstance(run, dict):
            errors.append("run entry is not an object")
            continue
        label = f"run '{run.get('property', '?')}'"
        for key, expected in (("property", str), ("status", str),
                              ("windows", list)):
            err = check_field(run, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        previous_frame = None
        for i, window in enumerate(run.get("windows", [])) \
                if isinstance(run.get("windows"), list) else []:
            if not isinstance(window, dict):
                errors.append(f"{label} window {i}: not an object")
                continue
            for key in ("frame", "decisions", "propagations", "conflicts",
                        "restarts", "backtracks", "implications", "wall_us"):
                err = check_field(window, key, int)
                if err:
                    errors.append(f"{label} window {i}: {err}")
            frame = window.get("frame")
            if isinstance(frame, int) and not isinstance(frame, bool):
                if previous_frame is not None and frame <= previous_frame:
                    errors.append(f"{label} window {i}: frame {frame} not "
                                  f"increasing (previous {previous_frame})")
                previous_frame = frame
    return errors


def check_trace(doc):
    """Chrome trace_event JSON from --trace-out (telemetry/span.cpp)."""
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    span_ids = set()
    last_ts = {}  # tid -> last timestamp seen in file order
    for i, ev in enumerate(events):
        label = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{label}: not an object")
            continue
        for key, expected in (("name", str), ("ph", str), ("ts", (int, float)),
                              ("pid", int), ("tid", int), ("args", dict)):
            err = check_field(ev, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            errors.append(f"{label}: ph {ph!r} is not 'B' or 'E'")
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            continue
        if not isinstance(args.get("span_id"), int):
            errors.append(f"{label}: args.span_id missing or not int")
            continue
        if ph == "B":
            span_ids.add(args["span_id"])
            if not isinstance(args.get("parent_id"), int):
                errors.append(f"{label}: begin event lacks int parent_id")
        tid = ev.get("tid")
        ts = ev.get("ts")
        if isinstance(tid, int) and isinstance(ts, (int, float)):
            if tid in last_ts and ts < last_ts[tid]:
                errors.append(
                    f"{label}: ts {ts} goes backwards on tid {tid} "
                    f"(previous {last_ts[tid]})")
            last_ts[tid] = ts
    # Referential integrity over the whole file: parents must exist
    # (parent_id 0 = root) and every end event must close an opened span.
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or not isinstance(ev.get("args"), dict):
            continue
        span_id = ev["args"].get("span_id")
        parent = ev["args"].get("parent_id")
        if ev.get("ph") == "B" and isinstance(parent, int) and parent != 0 \
                and parent not in span_ids:
            errors.append(f"event {i}: parent_id {parent} never begun")
        if ev.get("ph") == "E" and span_id not in span_ids:
            errors.append(f"event {i}: end of span {span_id} never begun")
    if not errors and not events:
        errors.append("trace has no events")
    return errors


def check_phase_list(phases, label):
    errors = []
    if not isinstance(phases, list):
        return [f"{label}: 'phases' is not a list"]
    for phase in phases:
        if not isinstance(phase, dict):
            errors.append(f"{label}: phase entry is not an object")
            continue
        for key, expected in (("name", str), ("count", int)):
            err = check_field(phase, key, expected)
            if err:
                errors.append(f"{label} phase: {err}")
        # inclusive_us / exclusive_us are timing fields: present in normal
        # output, stripped in jobs-invariance comparisons — allow both.
        for key in ("inclusive_us", "exclusive_us"):
            if key in phase and (isinstance(phase[key], bool)
                                 or not isinstance(phase[key], int)):
                errors.append(f"{label} phase: '{key}' is not an integer")
    return errors


def check_profile(doc):
    """--profile-out JSON (telemetry/profile.cpp), with or without timing."""
    errors = []
    errors.extend(check_phase_list(doc.get("phases"), "profile"))
    obligations = doc.get("obligations")
    if not isinstance(obligations, list):
        errors.append("'obligations' is not a list")
        obligations = []
    for ob in obligations:
        if not isinstance(ob, dict) or not isinstance(ob.get("name"), str):
            errors.append("obligation entry lacks a string 'name'")
            continue
        errors.extend(
            check_phase_list(ob.get("phases", []), f"obligation {ob['name']}"))
    timers = doc.get("timers")
    if not isinstance(timers, list):
        errors.append("'timers' is not a list")
        timers = []
    for timer in timers:
        if not isinstance(timer, dict):
            errors.append("timer entry is not an object")
            continue
        for key, expected in (("name", str), ("count", int)):
            err = check_field(timer, key, expected)
            if err:
                errors.append(f"timer: {err}")
    return errors


def check_bench(doc):
    """--bench-out history artifact (bench/bench_common.cpp)."""
    errors = []
    for key, expected in (("bench", str), ("git_rev", str),
                          ("machine", dict), ("cases", list)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    machine = doc.get("machine")
    if isinstance(machine, dict):
        for key, expected in (("hostname", str), ("hardware_threads", int),
                              ("page_size", int)):
            err = check_field(machine, key, expected)
            if err:
                errors.append(f"machine: {err}")
    for case in doc.get("cases", []) if isinstance(doc.get("cases"), list) \
            else []:
        if not isinstance(case, dict):
            errors.append("case entry is not an object")
            continue
        for key, expected in (("name", str), ("runs", int),
                              ("median_seconds", (int, float)),
                              ("min_seconds", (int, float)),
                              ("max_seconds", (int, float)),
                              ("stddev_seconds", (int, float))):
            err = check_field(case, key, expected)
            if err:
                errors.append(f"case {case.get('name', '?')}: {err}")
        if isinstance(case.get("runs"), int) and case["runs"] < 1:
            errors.append(f"case {case.get('name', '?')}: runs < 1")
    # The service-throughput bench must always emit its full case set —
    # a silently missing phase (e.g. every warm submit failed) would
    # otherwise slip past the bench_compare gate as "no regression".
    if doc.get("bench") == "service_throughput":
        required = {"cold/audit", "warm/p50", "warm/p99", "warm/mean",
                    "mixed/p50", "mixed/p99", "mixed/mean",
                    "sampler_off/mean", "sampler_on/mean"}
        names = {case.get("name") for case in doc.get("cases", [])
                 if isinstance(case, dict)}
        for missing in sorted(required - names):
            errors.append(f"service_throughput: case '{missing}' missing")
    return errors


def check_corpus(doc):
    """fuzz --out corpus artifact (src/fuzz/harness.cpp), with or without
    the timing block (stripped in jobs-invariance comparisons)."""
    errors = []
    for key, expected in (("seed", int), ("engine", str), ("count", int),
                          ("clean", list), ("variants", list),
                          ("summary", dict)):
        err = check_field(doc, key, expected)
        if err:
            errors.append(err)
    for leg in doc.get("clean", []) if isinstance(doc.get("clean"), list) \
            else []:
        if not isinstance(leg, dict):
            errors.append("clean entry is not an object")
            continue
        for key, expected in (("family", str), ("scanned", bool),
                              ("frames", int), ("obligations", int),
                              ("pass", bool)):
            err = check_field(leg, key, expected)
            if err:
                errors.append(f"clean {leg.get('family', '?')}: {err}")
    detected = 0
    reachable = 0
    variants = doc.get("variants")
    for v in variants if isinstance(variants, list) else []:
        if not isinstance(v, dict):
            errors.append("variant entry is not an object")
            continue
        label = f"variant {v.get('name', '?')}"
        for key, expected in (("name", str), ("family", str),
                              ("trigger", dict), ("payload", dict),
                              ("deep", bool), ("frames", int),
                              ("reachable", bool), ("detected", bool),
                              ("deterministic", bool), ("ok", bool)):
            err = check_field(v, key, expected)
            if err:
                errors.append(f"{label}: {err}")
        trigger = v.get("trigger")
        if isinstance(trigger, dict):
            for key, expected in (("kind", str), ("width", int),
                                  ("sequence_length", int), ("pattern", str),
                                  ("insertion_point", int)):
                err = check_field(trigger, key, expected)
                if err:
                    errors.append(f"{label} trigger: {err}")
        payload = v.get("payload")
        if isinstance(payload, dict):
            for key, expected in (("style", str), ("target", str),
                                  ("param", str)):
                err = check_field(payload, key, expected)
                if err:
                    errors.append(f"{label} payload: {err}")
        if v.get("detected") is True:
            detected += 1
            for key, expected in (("property", str),
                                  ("witness_confirmed", bool)):
                err = check_field(v, key, expected)
                if err:
                    errors.append(f"{label}: {err}")
        if v.get("reachable") is True:
            reachable += 1
        if v.get("ok") is False and not isinstance(v.get("failure"), str):
            errors.append(f"{label}: failing variant lacks 'failure'")
    summary = doc.get("summary")
    if isinstance(summary, dict):
        for key, expected in (("reachable", int), ("detected", int),
                              ("missed", int), ("false_positives", int),
                              ("harness_failures", int),
                              ("detection_rate", (int, float))):
            err = check_field(summary, key, expected)
            if err:
                errors.append(f"summary: {err}")
        rate = summary.get("detection_rate")
        if isinstance(rate, (int, float)) and not isinstance(rate, bool) \
                and not 0.0 <= rate <= 1.0:
            errors.append(f"summary: detection_rate {rate} outside [0, 1]")
        if summary.get("detected") != detected:
            errors.append(
                f"summary: detected {summary.get('detected')} != "
                f"{detected} detected variants")
        if summary.get("reachable") != reachable:
            errors.append(
                f"summary: reachable {summary.get('reachable')} != "
                f"{reachable} reachable variants")
    if isinstance(doc.get("count"), int) and isinstance(variants, list) \
            and doc["count"] != len(variants):
        errors.append(f"count {doc['count']} != {len(variants)} variants")
    timing = doc.get("timing")
    if timing is not None:
        if not isinstance(timing, dict):
            errors.append("'timing' is not an object")
        else:
            for key, expected in (("jobs", int),
                                  ("engine_quantiles", list),
                                  ("total_seconds", (int, float))):
                err = check_field(timing, key, expected)
                if err:
                    errors.append(f"timing: {err}")
            for q in timing.get("engine_quantiles", []) \
                    if isinstance(timing.get("engine_quantiles"), list) \
                    else []:
                if not isinstance(q, dict):
                    errors.append("timing: quantile entry is not an object")
                    continue
                for key, expected in (("engine", str), ("samples", int),
                                      ("p50_seconds", (int, float)),
                                      ("p90_seconds", (int, float)),
                                      ("p99_seconds", (int, float)),
                                      ("total_seconds", (int, float))):
                    err = check_field(q, key, expected)
                    if err:
                        errors.append(f"timing quantile: {err}")
    return errors


def check_text(path, text):
    errors = []
    if not text.strip():
        return [f"{path}: empty file"]

    # An events stream identifies itself on its first line (the whole file
    # never parses as one document, so this must precede the checks below).
    if is_events_stream(text):
        return [f"{path} (events): {e}" for e in check_events(text)]

    # A Prometheus exposition opens with its first family's TYPE comment
    # and is not JSON at all.
    if is_exposition(text):
        return [f"{path} (exposition): {e}" for e in check_exposition(text)]

    # Single-document artifacts (trace / profile / bench / stats) parse as
    # one JSON object; --metrics-out files are one object per line.
    doc = None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        pass
    if isinstance(doc, dict) and "traceEvents" in doc:
        return [f"{path} (trace): {e}" for e in check_trace(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-profile-v1":
        return [f"{path} (profile): {e}" for e in check_profile(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-bench-v1":
        return [f"{path} (bench): {e}" for e in check_bench(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-corpus-v1":
        return [f"{path} (corpus): {e}" for e in check_corpus(doc)]
    if isinstance(doc, dict) and doc.get("schema") == "trojanscout-flight-v1":
        return [f"{path} (flight): {e}" for e in check_flight(doc)]
    if isinstance(doc, dict) and "schema" in doc:
        return [f"{path}: unknown schema {doc['schema']!r}"]
    if isinstance(doc, dict) and doc.get("type") == "stats":
        return [f"{path} (stats): {e}" for e in check_stats(doc)]

    for lineno, line in enumerate(text.splitlines(), start=1):
        errors.extend(f"{path}: {e}" for e in check_line(lineno, line))
    return errors


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{path}: {e}"]
    return check_text(path, text)


def _self_test_samples():
    """(name, text, should_pass) fixtures exercising every validator."""
    def jsonl(*records):
        return "".join(json.dumps(r) + "\n" for r in records)

    def hist(count, sum_s, buckets):
        full = [0] * HISTOGRAM_BUCKETS
        for index, value in buckets.items():
            full[index] = value
        return {"count": count, "sum_s": sum_s, "min_s": 0.001,
                "max_s": 0.25, "buckets": full}

    header = {"type": "header", "seq": 0, "ts_ms": 1, "schema":
              EVENTS_SCHEMA_NAME, "pid": 42}
    good_events = jsonl(
        header,
        {"type": "worker_up", "seq": 1, "ts_ms": 2, "endpoint": "tcp:w0"},
        {"type": "retry_after", "seq": 2, "ts_ms": 3, "job": "j", "worker":
         "tcp:w0", "outstanding": 60, "requested": 10, "retry_after_ms": 200},
        {"type": "worker_down", "seq": 3, "ts_ms": 4, "endpoint": "tcp:w0",
         "reason": "health ping failed"},
        {"type": "worker_evicted", "seq": 4, "ts_ms": 4, "endpoint":
         "tcp:w0", "live": 1},
        {"type": "reshard", "seq": 5, "ts_ms": 5, "job": "j",
         "obligations": 7},
        {"type": "claim_steal", "seq": 6, "ts_ms": 6, "key": "k",
         "age_s": 31.5},
        {"type": "cache_corrupt_skip", "seq": 7, "ts_ms": 7, "key": "k",
         "dir": "/tmp/l2"},
        {"type": "worker_rejoined", "seq": 8, "ts_ms": 9, "endpoint":
         "tcp:w0", "live": 2},
        {"type": "slo_breach", "seq": 9, "ts_ms": 10, "job": "j",
         "scope": "job", "elapsed_ms": 104.5, "slo_ms": 100},
        {"type": "slo_breach", "seq": 10, "ts_ms": 11, "job": "j",
         "scope": "obligation", "property": "sp/way0", "worker": "tcp:w0",
         "elapsed_ms": 55.0, "slo_ms": 50})
    gap_events = jsonl(
        header,
        {"type": "worker_up", "seq": 2, "ts_ms": 2, "endpoint": "tcp:w0"})
    unknown_events = jsonl(
        header,
        {"type": "meltdown", "seq": 1, "ts_ms": 2})
    misfield_events = jsonl(
        header,
        {"type": "worker_down", "seq": 1, "ts_ms": 2, "endpoint": "tcp:w0"})
    # An obligation-scope breach must name the worker that blew the budget.
    anonymous_breach = jsonl(
        header,
        {"type": "slo_breach", "seq": 1, "ts_ms": 2, "job": "j",
         "scope": "obligation", "elapsed_ms": 55.0, "slo_ms": 50})

    obligation = {
        "type": "obligation", "design": "router", "engine": "PORTFOLIO",
        "property": "hdr/corruption", "status": "proven-unbounded",
        "violated": False, "cancelled": False, "bound_reached": True,
        "proven_unbounded": True, "engine_used": "pdr",
        "frames_completed": 8, "invariant_clauses": 3, "sat_decisions": 10,
        "sat_propagations": 90, "sat_conflicts": 2, "sat_restarts": 0,
        "sat_learned_clauses": 2, "cnf_vars": 64, "frame_clauses": [],
        "atpg_decisions": 0, "atpg_backtracks": 0, "atpg_implications": 0,
        "atpg_frames_proven_clean": 0, "atpg_frames_aborted": 0,
        "pdr_frames": 3, "pdr_pushed_clauses": 4, "pdr_ctis": 5,
        "pdr_obligations": 6, "seconds": 0.02, "memory_bytes": 4096}
    race = {
        "type": "portfolio", "design": "router",
        "property": "hdr/corruption", "winner": "pdr",
        "bmc.status": "cancelled", "bmc.cancelled": True,
        "bmc.seconds": 0.01, "atpg.status": "cancelled",
        "atpg.cancelled": True, "atpg.seconds": 0.01,
        "pdr.status": "proven-unbounded", "pdr.cancelled": False,
        "pdr.seconds": 0.02}
    good_report = jsonl(
        obligation, race,
        {"type": "counters", "portfolio.win.pdr": 1,
         "portfolio.cancelled.bmc": 1})
    legacy_obligation = json.loads(json.dumps(obligation))
    del legacy_obligation["proven_unbounded"]  # pre-portfolio emitter
    stale_report = jsonl(legacy_obligation)
    headless_race = json.loads(json.dumps(race))
    headless_race["winner"] = "portfolio"  # winner must be a concrete leg
    bad_winner_report = jsonl(headless_race)

    w0 = {"counters": {"fleet.jobs": 3, "cache.hits": 5},
          "histograms": {"engine.solve": hist(4, 0.5, {10: 3, 12: 1})}}
    w1 = {"counters": {"fleet.jobs": 2},
          "histograms": {"engine.solve": hist(1, 0.25, {11: 1}),
                         "cache.read": hist(0, 0.0, {})}}
    merged = {"counters": {"cache.hits": 5, "fleet.jobs": 5},
              "histograms": {"engine.solve":
                             hist(5, 0.75, {10: 3, 11: 1, 12: 1})}}
    stats = {
        "type": "stats", "endpoint": "tcp:127.0.0.1:7", "role":
        "coordinator", "pid": 42, "uptime_s": 1.5, "jobs_completed": 5,
        "retry_after_sent": 0, "reshards": 1, "bad_requests": 0,
        "uptime_ms": 1500,
        "sampler": {"enabled": True, "interval_ms": 1000.0, "samples": 3,
                    "last_age_ms": 120},
        "series": [
            {"seq": 0, "t_ms": 1000, "span_s": 1.0,
             "counters": {"fleet.jobs": {"delta": 2, "rate_per_s": 2.0}},
             "histograms": {"engine.solve":
                            {"count": 3, "sum_s": 0.4, "p50_s": 0.1,
                             "p90_s": 0.2, "p99_s": 0.25}}},
            {"seq": 1, "t_ms": 2000, "span_s": 1.0, "counters": {},
             "histograms": {}}],
        "slo": {"job_ms": 0, "obligation_ms": 0, "job_breaches": 0,
                "obligation_breaches": 0},
        "workers": [
            {"endpoint": "tcp:w0", "alive": True, "responding": True,
             "outstanding": 0, "pid": 43, "uptime_s": 1.0,
             "jobs_completed": 3, "bad_requests": 0, "telemetry": w0},
            {"endpoint": "tcp:w1", "alive": True, "responding": True,
             "outstanding": 0, "pid": 44, "uptime_s": 1.0,
             "jobs_completed": 2, "bad_requests": 0, "telemetry": w1}],
        "telemetry": merged,
        "coordinator_telemetry": {"counters": {"fleet.retry_after": 0},
                                  "histograms": {}},
        "slowest": [
            {"property": "p0", "worker": "tcp:w0", "total_us": 900,
             "phases": {"solve": 700, "encode": 200}},
            {"property": "p1", "worker": "tcp:w1", "total_us": 400,
             "phases": {"solve": 400}}],
    }
    bad_counter = json.loads(json.dumps(stats))
    bad_counter["telemetry"]["counters"]["fleet.jobs"] = 6
    bad_buckets = json.loads(json.dumps(stats))
    bad_buckets["telemetry"]["histograms"]["engine.solve"]["buckets"][13] = 1
    short_buckets = json.loads(json.dumps(stats))
    short_buckets["workers"][0]["telemetry"]["histograms"]["engine.solve"][
        "buckets"].pop()
    unsorted_tail = json.loads(json.dumps(stats))
    unsorted_tail["slowest"].reverse()
    gapped_series = json.loads(json.dumps(stats))
    gapped_series["series"][1]["seq"] = 5
    ghost_snapshot = json.loads(json.dumps(stats))
    ghost_snapshot["workers"][1]["responding"] = False

    exposition = (
        "# TYPE trojanscout_cache_hit_total counter\n"
        "trojanscout_cache_hit_total 42\n"
        "# TYPE trojanscout_worker_up gauge\n"
        "trojanscout_worker_up{worker=\"tcp:w0\"} 1\n"
        "trojanscout_worker_up{worker=\"tcp:w1\"} 0\n"
        "# TYPE trojanscout_solve_seconds histogram\n"
        "trojanscout_solve_seconds_bucket{le=\"0.001024\"} 1\n"
        "trojanscout_solve_seconds_bucket{le=\"0.004096\"} 2\n"
        "trojanscout_solve_seconds_bucket{le=\"+Inf\"} 2\n"
        "trojanscout_solve_seconds_sum 0.005\n"
        "trojanscout_solve_seconds_count 2\n")
    orphan_sample = ("# TYPE trojanscout_ok_total counter\n"
                     "trojanscout_ok_total 1\n"
                     "trojanscout_orphan_total 42\n")
    shrinking_buckets = exposition.replace(
        "le=\"0.004096\"} 2", "le=\"0.004096\"} 0")
    inf_mismatch = exposition.replace("le=\"+Inf\"} 2", "le=\"+Inf\"} 3")
    untotaled_counter = exposition.replace(
        "trojanscout_cache_hit_total", "trojanscout_cache_hit")
    grown = exposition.replace(
        "trojanscout_cache_hit_total 42", "trojanscout_cache_hit_total 50")
    shrunk = exposition.replace(
        "trojanscout_cache_hit_total 42", "trojanscout_cache_hit_total 7")

    flight = {"schema": "trojanscout-flight-v1", "design": "mc8051",
              "engine": "BMC", "runs": [
                  {"property": "sp/way0", "status": "bound_reached",
                   "windows": [
                       {"frame": 0, "decisions": 25, "propagations": 178,
                        "conflicts": 3, "restarts": 0, "backtracks": 0,
                        "implications": 0, "wall_us": 45},
                       {"frame": 1, "decisions": 11, "propagations": 96,
                        "conflicts": 1, "restarts": 0, "backtracks": 0,
                        "implications": 0, "wall_us": 30}]},
                  {"property": "sp/way1", "status": "violated",
                   "windows": []}]}
    flight_backwards = json.loads(json.dumps(flight))
    flight_backwards["runs"][0]["windows"][1]["frame"] = 0
    flight_untimed = json.loads(json.dumps(flight))
    del flight_untimed["runs"][0]["windows"][0]["wall_us"]

    trace = {"traceEvents": [
        {"name": "fleet:job:fleet-1", "ph": "B", "ts": 0, "pid": 1,
         "tid": 1, "args": {"span_id": 1, "parent_id": 0}},
        {"name": "obligation:p0", "ph": "B", "ts": 5, "pid": 1, "tid": 1000,
         "args": {"span_id": 2, "parent_id": 1}},
        {"name": "obligation:p0", "ph": "E", "ts": 9, "pid": 1, "tid": 1000,
         "args": {"span_id": 2}},
        {"name": "fleet:job:fleet-1", "ph": "E", "ts": 10, "pid": 1,
         "tid": 1, "args": {"span_id": 1}}]}
    bad_trace = json.loads(json.dumps(trace))
    bad_trace["traceEvents"][2]["ts"] = 3  # backwards on tid 1000

    return [
        ("events/good", good_events, True),
        ("events/seq-gap", gap_events, False),
        ("events/unknown-type", unknown_events, False),
        ("events/missing-field", misfield_events, False),
        ("events/anonymous-slo-breach", anonymous_breach, False),
        ("report/portfolio-good", good_report, True),
        ("report/missing-proven-unbounded", stale_report, False),
        ("report/portfolio-bad-winner", bad_winner_report, False),
        ("stats/good", json.dumps(stats), True),
        ("stats/merged-counter-drift", json.dumps(bad_counter), False),
        ("stats/merged-bucket-drift", json.dumps(bad_buckets), False),
        ("stats/short-buckets", json.dumps(short_buckets), False),
        ("stats/tail-unsorted", json.dumps(unsorted_tail), False),
        ("stats/series-seq-gap", json.dumps(gapped_series), False),
        ("stats/unresponsive-with-snapshot", json.dumps(ghost_snapshot),
         False),
        ("exposition/good", exposition, True),
        ("exposition/sample-before-type", orphan_sample, False),
        ("exposition/shrinking-buckets", shrinking_buckets, False),
        ("exposition/inf-count-mismatch", inf_mismatch, False),
        ("exposition/counter-without-total", untotaled_counter, False),
        ("flight/good", json.dumps(flight), True),
        ("flight/backwards-frame", json.dumps(flight_backwards), False),
        ("flight/missing-wall-us", json.dumps(flight_untimed), False),
        ("trace/good", json.dumps(trace), True),
        ("trace/backwards-ts", json.dumps(bad_trace), False),
        ("unknown-schema", json.dumps({"schema": "trojanscout-bogus-v9"}),
         False),
        ("diff/monotone", (exposition, grown), True),
        ("diff/backwards", (exposition, shrunk), False),
    ]


def self_test():
    """Runs the embedded fixtures through check_text; the validator must
    accept every good sample and reject every bad one."""
    failures = []
    for name, text, should_pass in _self_test_samples():
        if isinstance(text, tuple):  # (before, after) exposition diff pair
            errors = diff_expositions(*text)
        else:
            errors = check_text(name, text)
        if should_pass and errors:
            failures.append(f"{name}: expected clean, got: " +
                            "; ".join(errors))
        if not should_pass and not errors:
            failures.append(f"{name}: expected a violation, got none")
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"check_metrics --self-test: FAILED ({len(failures)})",
              file=sys.stderr)
        return 1
    print(f"check_metrics --self-test: OK "
          f"({len(_self_test_samples())} fixtures)")
    return 0


def diff_exposition_files(before_path, after_path):
    errors = []
    texts = []
    for path in (before_path, after_path):
        try:
            with open(path, "r", encoding="utf-8") as f:
                texts.append(f.read())
        except OSError as e:
            errors.append(f"{path}: {e}")
    if not errors:
        errors = diff_expositions(*texts)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_metrics --diff-exposition: FAILED "
              f"({len(errors)} violations)", file=sys.stderr)
        return 1
    print(f"check_metrics --diff-exposition: OK "
          f"({before_path} -> {after_path})")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) == 4 and argv[1] == "--diff-exposition":
        return diff_exposition_files(argv[2], argv[3])
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    if all_errors:
        print(f"check_metrics: FAILED ({len(all_errors)} violations)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({len(argv) - 1} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
