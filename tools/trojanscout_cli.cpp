// trojanscout command-line tool: audit a structural-Verilog 3PIP against a
// valid-ways spec file without writing any C++.
//
//   trojanscout_cli info  --design ip.v
//   trojanscout_cli check --design ip.v --spec ip.spec --register cfg
//                         [--engine ENGINE] [--frames N] [--budget S]
//                         [--minimize] [--vcd out.vcd]
//   trojanscout_cli audit --design ip.v --spec ip.spec
//                         [--jobs N] [--fail-fast] [--engine ENGINE]
//                         [--frames N] [--budget S] [--no-scan] [--no-bypass]
//                         [--trace-out trace.json] [--metrics-out run.jsonl]
//                         [--profile-out profile.json] [--progress[=SECS]]
//                         [--stall-window SECS] [--flight-out flight.json]
//   trojanscout_cli prove --design ip.v --spec ip.spec --register cfg
//                         [--max-k K]
//   trojanscout_cli gen   --family mc8051|risc|aes [--trojan NAME]
//                         [--out design.v]
//   trojanscout_cli certify    --design ip.v --spec ip.spec --out cert.json
//                              [--jobs N] [--engine ENGINE] [--frames N]
//                              [--budget S] [--no-scan] [--no-bypass]
//                              [--pretty]
//   trojanscout_cli check-cert --cert cert.json --design ip.v --spec ip.spec
//   trojanscout_cli fuzz  [--seed N] [--count N] [--design FAMILY|all]
//                         [--engine ENGINE] [--jobs N] [--frames-slack N]
//                         [--frames-cap N] [--budget S] [--max-seq N]
//                         [--no-clean] [--no-differential] [--cache-dir DIR]
//                         [--out corpus.json] [--no-timing]
//                         [--signature-out FILE] [--min-rate R] [--shrink]
//                         [--inject-failure SUBSTR] [--quiet]
//   trojanscout_cli serve  --socket ENDPOINT [--cache-dir DIR]
//                          [--cache off|ro|rw] [--cache-max-mb N] [--jobs N]
//                          [--l2-dir DIR] [--l2-max-mb N] [--read-timeout S]
//                          [--port-file FILE] [--events-out e.jsonl]
//                          [--events-max-mb N] [--sample-interval-ms MS]
//   trojanscout_cli serve-fleet --socket ENDPOINT
//                          (--workers EP1,EP2,... | --spawn N)
//                          [--l2-dir DIR] [--l2-max-mb N] [--queue-cap N]
//                          [--retry-after-ms N] [--worker-jobs N]
//                          [--run-dir DIR] [--port-file FILE]
//                          [--health-interval S] [--worker-timeout S]
//                          [--trace-out t.json] [--events-out e.jsonl]
//                          [--events-max-mb N] [--sample-interval-ms MS]
//                          [--slo-ms N] [--slo-obligation-ms N]
//   trojanscout_cli submit --socket ENDPOINT --design ip.v --spec ip.spec
//                          [--engine ENGINE] [--frames N] [--budget S]
//                          [--no-scan] [--no-bypass] [--id NAME]
//                          [--connect-retries N] [--overload-retries N]
//                          [--signature-out FILE] [--quiet]
//   trojanscout_cli submit --socket ENDPOINT --stats [--json]
//   trojanscout_cli submit --socket ENDPOINT --metrics [--out FILE]
//   trojanscout_cli top    --socket ENDPOINT [--interval-ms MS]
//                          [--once] [--polls N] [--json]
//
// `audit` runs the paper's full Algorithm 1 over every register with a spec
// block, scheduling the independent property checks across --jobs worker
// threads (default: all hardware threads). Without --fail-fast the report
// is deterministic — identical for any jobs value. With --cache-dir,
// per-obligation verdicts persist to a content-addressed store and warm
// re-audits of unchanged designs skip the engines entirely.
//
// `fuzz` sweeps a seeded Trojan mutation corpus over the catalog's clean
// cores and cross-checks the detector against three oracles (clean designs
// all-pass, simulator-reachable mutants flagged with replay-confirmed
// witnesses, cold/warm x jobs determinism), emitting a
// `trojanscout-corpus-v1` artifact with detection rate and latency
// quantiles. --shrink minimizes the first failing variant.
//
// `serve` runs the same audits as a daemon: newline-delimited JSON jobs
// arrive over a Unix-domain or TCP socket (ENDPOINT is "unix:/path", a
// bare path, or "tcp:host:port"; port 0 picks an ephemeral port reported
// via --port-file), identical in-flight obligations are deduped across
// concurrent jobs, and every reported DetectionReport signature is
// byte-identical to a direct `audit` with the same flags. --l2-dir points
// several daemons at one shared verdict store with claim-based
// fleet-wide dedupe. `submit` is the matching client.
//
// `serve-fleet` runs the shard coordinator: it speaks the same protocol
// as `serve` but fans each job's obligations out to worker daemons by
// consistent hash of the verdict-cache key, re-shards on worker death,
// and refuses jobs that would overrun a worker queue with a retry-after
// response. --spawn N forks N `serve` workers on ephemeral TCP ports
// (sharing --l2-dir) and tears them down on exit; --workers attaches to
// externally managed daemons.
//
// Observability plane: --trace-out on serve-fleet stitches the workers'
// span records into one Perfetto-loadable Chrome trace (ids, tids and
// clocks rebased into the coordinator's namespace); --events-out on
// serve/serve-fleet appends a `trojanscout-events-v1` JSONL stream of
// operational events (worker eviction, re-shards, retry-after refusals,
// claim steals, corrupt-entry skips, SLO breaches) — --events-max-mb
// rotates the stream to FILE.1 when it grows past the cap, and with
// --spawn, each worker also gets its own workerN.events.jsonl under the
// run dir. `submit --stats` queries a daemon or coordinator; against a
// coordinator the reply merges every worker's telemetry registry exactly
// (counters summed, histogram buckets added) and carries the
// slowest-obligations table.
//
// Continuous monitoring (PR 9): serve and serve-fleet run a background
// sampler (--sample-interval-ms, 0 disables) that snapshots the counter
// registry into a bounded in-memory time series — counters become
// rate-over-window, timers become per-window p50/p90/p99 — carried in
// every stats reply under "series". `submit --metrics` scrapes the same
// state as Prometheus text exposition (the coordinator's scrape fans out
// to every live worker and merges before rendering); `top` polls stats
// into a live refreshing dashboard (per-worker throughput, cache hit
// rate, queue depth, sparkline rate history, slowest obligations).
// --slo-ms / --slo-obligation-ms arm deadline tracking on the
// coordinator: breaches tick slo.* burn-rate counters and emit
// `slo_breach` event records. `audit --flight-out` dumps the engines'
// per-frame flight recorder (solver/search counter deltas + frame wall
// time) as a `trojanscout-flight-v1` document.
//
// `certify` is `audit` with evidence: every violated property carries its
// witness, every BMC-clean frame carries a binary-DRAT proof, bundled into
// a deterministic JSON certificate (byte-identical for any --jobs value).
// `check-cert` re-validates a certificate offline against the design:
// witnesses are replayed on the simulator, DRAT proofs are checked against
// independently re-derived CNF, and the report signature is recomputed.
//
// Exit codes: 0 = clean / generated / certificate valid, 2 = Trojan found,
// 1 = usage / error / certificate rejected.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bmc/bmc.hpp"
#include "cache/verdict_cache.hpp"
#include "cache/verdict_codec.hpp"
#include "core/detector.hpp"
#include "core/minimize.hpp"
#include "core/parallel_detector.hpp"
#include "core/telemetry_sink.hpp"
#include "designs/catalog.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutation.hpp"
#include "proof/certificate.hpp"
#include "properties/monitors.hpp"
#include "fleet/coordinator.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "sim/vcd.hpp"
#include "specdsl/specdsl.hpp"
#include "telemetry/events.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/span.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "verilog/reader.hpp"
#include "verilog/writer.hpp"

using namespace trojanscout;

namespace {

#ifndef TROJANSCOUT_GIT_REV
#define TROJANSCOUT_GIT_REV "unknown"
#endif

int usage() {
  std::cerr
      << "usage: trojanscout_cli <subcommand> [flags]\n"
         "\n"
         "  info       --design ip.v\n"
         "               print gate/port/register structure\n"
         "  check      --design ip.v --spec ip.spec --register REG\n"
         "               [--engine ENGINE] [--frames N] [--budget S]\n"
         "               [--minimize] [--vcd out.vcd]\n"
         "               check one register's corruption property\n"
         "  audit      --design ip.v --spec ip.spec\n"
         "               [--jobs N] [--fail-fast] [--engine ENGINE]\n"
         "               [--frames N] [--budget S] [--no-scan] [--no-bypass]\n"
         "               [--cache-dir DIR] [--cache off|ro|rw]\n"
         "               [--cache-max-mb N] [--signature-out FILE]\n"
         "               [--trace-out t.json] [--metrics-out run.jsonl]\n"
         "               [--profile-out p.json] [--progress[=SECS]]\n"
         "               [--stall-window SECS] [--flight-out f.json]\n"
         "               run Algorithm 1 over every spec'd register\n"
         "  prove      --design ip.v --spec ip.spec --register REG\n"
         "               [--max-k K] [--budget S]\n"
         "               unbounded proof by k-induction\n"
         "  gen        --family mc8051|risc|aes [--trojan NAME]\n"
         "               [--out design.v]\n"
         "               emit a benchmark design as structural Verilog\n"
         "  certify    --design ip.v --spec ip.spec --out cert.json\n"
         "               [--jobs N] [--engine ENGINE] [--frames N]\n"
         "               [--budget S] [--no-scan] [--no-bypass] [--pretty]\n"
         "               [--cache-dir DIR] [--cache off|ro|rw]\n"
         "               [--cache-max-mb N]\n"
         "               audit with witness + DRAT evidence bundled\n"
         "  check-cert --cert cert.json --design ip.v --spec ip.spec\n"
         "               re-validate a certificate offline\n"
         "  fuzz       [--seed N] [--count N] [--design FAMILY|all]\n"
         "               [--engine ENGINE] [--jobs N] [--frames-slack N]\n"
         "               [--frames-cap N] [--budget S] [--max-seq N]\n"
         "               [--no-clean] [--no-differential] [--cache-dir DIR]\n"
         "               [--out corpus.json] [--no-timing]\n"
         "               [--signature-out FILE] [--min-rate R] [--shrink]\n"
         "               [--inject-failure SUBSTR] [--quiet]\n"
         "               differential detection sweep over a seeded\n"
         "               Trojan mutation corpus\n"
         "  serve      --socket ENDPOINT [--cache-dir DIR]\n"
         "               [--cache off|ro|rw] [--cache-max-mb N] [--jobs N]\n"
         "               [--l2-dir DIR] [--l2-max-mb N] [--read-timeout S]\n"
         "               [--port-file FILE] [--events-out e.jsonl]\n"
         "               [--events-max-mb N] [--sample-interval-ms MS]\n"
         "               audit daemon (NDJSON over unix:/path or\n"
         "               tcp:host:port; port 0 = ephemeral)\n"
         "  serve-fleet --socket ENDPOINT\n"
         "               (--workers EP1,EP2,... | --spawn N)\n"
         "               [--l2-dir DIR] [--l2-max-mb N] [--queue-cap N]\n"
         "               [--retry-after-ms N] [--worker-jobs N]\n"
         "               [--run-dir DIR] [--port-file FILE]\n"
         "               [--health-interval S] [--worker-timeout S]\n"
         "               [--trace-out t.json] [--events-out e.jsonl]\n"
         "               [--events-max-mb N] [--sample-interval-ms MS]\n"
         "               [--slo-ms N] [--slo-obligation-ms N]\n"
         "               shard coordinator over N worker daemons\n"
         "  submit     --socket ENDPOINT --design ip.v --spec ip.spec\n"
         "               [--engine ENGINE] [--frames N] [--budget S]\n"
         "               [--no-scan] [--no-bypass] [--id NAME]\n"
         "               [--connect-retries N] [--overload-retries N]\n"
         "               [--signature-out FILE] [--quiet]\n"
         "               send one audit job to a daemon or fleet\n"
         "  submit     --socket ENDPOINT --stats [--json]\n"
         "               query daemon/fleet stats (merged telemetry,\n"
         "               per-worker breakdown, slowest obligations)\n"
         "  submit     --socket ENDPOINT --metrics [--out FILE]\n"
         "               scrape Prometheus text exposition (a fleet\n"
         "               scrape merges every live worker's registry)\n"
         "  top        --socket ENDPOINT [--interval-ms MS]\n"
         "               [--once] [--polls N] [--json]\n"
         "               live dashboard: throughput sparklines, cache\n"
         "               hit rate, queue depth, per-worker rates\n"
         "\n"
         "  --version  print the build's git revision\n"
         "\n"
         "engines (every ENGINE above accepts the same four values):\n"
         "  bmc        SAT-based bounded model checking; DRAT proofs per\n"
         "             clean frame (default)\n"
         "  atpg       sequential justification search with SCOAP guidance;\n"
         "             fast counterexamples, no clean-frame proofs\n"
         "  pdr        IC3/PDR: unbounded proofs by inductive invariant, or\n"
         "             counterexamples at any depth\n"
         "  portfolio  race bmc, atpg, and pdr concurrently; the strongest\n"
         "             verdict wins (ties break bmc > atpg > pdr) and the\n"
         "             losers are cancelled\n"
         "\n"
         "exit codes: 0 = clean/ok, 2 = Trojan found, 1 = usage/error\n";
  return 1;
}

/// Shared --engine parser: all twelve subcommands accept the same values.
core::EngineKind parse_engine_flag(const util::CliParser& cli) {
  const std::string name = cli.get_string("engine", "bmc");
  const std::optional<core::EngineKind> kind =
      core::engine_kind_from_string(name);
  if (!kind.has_value()) {
    throw std::runtime_error("unknown --engine '" + name +
                             "' (expected bmc | atpg | pdr | portfolio)");
  }
  return *kind;
}

/// Opens the verdict cache requested by --cache-dir / --cache /
/// --cache-max-mb; null when caching is off (no directory, or --cache=off).
std::unique_ptr<cache::VerdictCache> open_cache(const util::CliParser& cli) {
  const std::string dir = cli.get_string("cache-dir", "");
  if (dir.empty()) {
    if (cli.has("cache")) {
      throw std::runtime_error("--cache needs --cache-dir");
    }
    return nullptr;
  }
  cache::VerdictCache::Options options;
  options.dir = dir;
  const std::string mode = cli.get_string("cache", "rw");
  if (!cache::cache_mode_from_name(mode, options.mode)) {
    throw std::runtime_error("--cache must be off, ro, or rw (got '" + mode +
                             "')");
  }
  if (options.mode == cache::CacheMode::kOff) return nullptr;
  const long max_mb = cli.get_int("cache-max-mb", 256);
  options.max_bytes = max_mb <= 0
                          ? 0
                          : static_cast<std::uint64_t>(max_mb) * 1024 * 1024;
  return std::make_unique<cache::VerdictCache>(std::move(options));
}

void print_cache_summary(const cache::VerdictCache& vc) {
  const cache::CacheStats s = vc.stats();
  std::cout << "cache (" << cache_mode_name(vc.mode()) << " " << vc.dir()
            << "): " << s.hits << " hits, " << s.misses << " misses, "
            << s.stores << " stores, " << s.evictions << " evictions";
  if (s.corrupt_skipped > 0) {
    std::cout << ", " << s.corrupt_skipped << " corrupt skipped";
  }
  std::cout << "; " << vc.entry_count() << " entries, " << vc.total_bytes()
            << " bytes\n";
}

void write_signature(const std::string& path,
                     const core::DetectionReport& report) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << report.signature();
  std::cout << "signature written to " << path << "\n";
}

/// Serializes every run's flight-recorder windows (--flight-out) as one
/// `trojanscout-flight-v1` document: per obligation, the engine's
/// per-frame counter deltas (solver decisions/propagations/conflicts/
/// restarts for BMC, decisions/backtracks/implications for ATPG) plus the
/// frame's wall time. wall_us is the documented timing carve-out — it is
/// observational and never flows into cached verdicts or run reports.
void write_flight(const std::string& path, const std::string& design_name,
                  const std::string& engine,
                  const core::DetectionReport& report) {
  if (path.empty()) return;
  proof::Json doc = proof::Json::object();
  doc.set("schema", "trojanscout-flight-v1");
  doc.set("design", design_name);
  doc.set("engine", engine);
  proof::Json runs = proof::Json::array();
  std::size_t windows_total = 0;
  for (const core::PropertyRun& run : report.runs) {
    proof::Json r = proof::Json::object();
    r.set("property", run.property);
    r.set("status", run.check.status);
    proof::Json windows = proof::Json::array();
    for (const telemetry::FlightWindow& w : run.check.counters.flight) {
      proof::Json jw = proof::Json::object();
      jw.set("frame", w.frame);
      jw.set("decisions", w.decisions);
      jw.set("propagations", w.propagations);
      jw.set("conflicts", w.conflicts);
      jw.set("restarts", w.restarts);
      jw.set("backtracks", w.backtracks);
      jw.set("implications", w.implications);
      jw.set("wall_us", w.wall_us);
      windows.push_back(std::move(jw));
      windows_total++;
    }
    r.set("windows", std::move(windows));
    runs.push_back(std::move(r));
  }
  doc.set("runs", std::move(runs));
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << doc.dump_pretty() << "\n";
  std::cout << "flight record written to " << path << " ("
            << report.runs.size() << " runs, " << windows_total
            << " windows)\n";
}

netlist::Netlist load_design(const util::CliParser& cli) {
  const std::string path = cli.get_string("design", "");
  if (path.empty()) throw std::runtime_error("--design is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  netlist::Netlist nl = verilog::read_verilog(in);
  nl.validate();
  return nl;
}

int cmd_info(const util::CliParser& cli) {
  const netlist::Netlist nl = load_design(cli);
  std::cout << "gates: " << nl.size() << "\nflip-flops: " << nl.dffs().size()
            << "\ninput ports:";
  for (const auto& p : nl.input_ports()) {
    std::cout << " " << p.name << "[" << p.bits.size() << "]";
  }
  std::cout << "\noutput ports:";
  for (const auto& p : nl.output_ports()) {
    std::cout << " " << p.name << "[" << p.bits.size() << "]";
  }
  std::cout << "\nregisters:";
  for (const auto& r : nl.registers()) {
    std::cout << " " << r.name << "[" << r.dffs.size() << "]";
  }
  std::cout << "\n";
  return 0;
}

int cmd_check(const util::CliParser& cli) {
  designs::Design design;
  design.name = cli.get_string("design", "design");
  design.nl = load_design(cli);
  design.spec =
      specdsl::load_spec_file(design.nl, cli.get_string("spec", ""));

  const std::string reg = cli.get_string("register", "");
  const auto* reg_spec = design.spec.find(reg);
  if (reg_spec == nullptr) {
    std::cerr << "register '" << reg << "' has no spec block\n";
    return 1;
  }
  design.critical_registers = {reg};

  core::DetectorOptions options;
  options.engine.kind = parse_engine_flag(cli);
  options.engine.max_frames =
      static_cast<std::size_t>(cli.get_int("frames", 128));
  options.engine.time_limit_seconds = cli.get_double("budget", 60.0);
  options.scan_pseudo_critical = false;
  options.check_bypass = false;

  core::TrojanDetector detector(design, options);
  const core::CheckResult result = detector.check_corruption(reg);
  if (!result.violated) {
    std::cout << "clean: no out-of-spec update of '" << reg << "' within "
              << result.frames_completed << " cycles ("
              << result.status << ")\n";
    return 0;
  }

  sim::Witness witness = *result.witness;
  std::cout << "TROJAN: '" << reg << "' corrupted at cycle "
            << witness.violation_frame << " (found in " << result.seconds
            << " s)\n";
  if (cli.get_bool("minimize", false)) {
    // Rebuild the monitor on a fresh copy to minimize against.
    designs::Design scratch = design;
    const auto bad = properties::build_corruption_monitor(
        scratch.nl, *scratch.spec.find(reg),
        properties::CorruptionMonitorKind::kExact);
    core::MinimizeStats stats;
    witness = core::minimize_witness(scratch.nl, bad, witness, &stats);
    std::cout << "minimized witness: " << stats.bits_before << " -> "
              << stats.bits_after << " set input bits\n";
  }
  std::cout << witness.to_string(design.nl);
  const std::string vcd = cli.get_string("vcd", "");
  if (!vcd.empty() && sim::write_witness_vcd(design.nl, witness, vcd)) {
    std::cout << "waveform written to " << vcd << "\n";
  }
  return 2;
}

int cmd_audit(const util::CliParser& cli) {
  designs::Design design;
  design.name = cli.get_string("design", "design");
  design.nl = load_design(cli);
  design.spec = specdsl::load_spec_file(design.nl, cli.get_string("spec", ""));
  if (design.spec.registers.empty()) {
    std::cerr << "spec file declares no registers\n";
    return 1;
  }
  for (const auto& reg_spec : design.spec.registers) {
    design.critical_registers.push_back(reg_spec.reg);
  }

  core::ParallelDetectorOptions options;
  options.detector.engine.kind = parse_engine_flag(cli);
  options.detector.engine.max_frames =
      static_cast<std::size_t>(cli.get_int("frames", 128));
  options.detector.engine.time_limit_seconds = cli.get_double("budget", 60.0);
  options.detector.scan_pseudo_critical = !cli.get_bool("no-scan", false);
  options.detector.check_bypass = !cli.get_bool("no-bypass", false);
  options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  options.fail_fast = cli.get_bool("fail-fast", false);

  // --cache-dir persists per-obligation verdicts; a warm re-audit of an
  // unchanged design answers every obligation from disk with zero solves.
  const std::unique_ptr<cache::VerdictCache> verdict_cache = open_cache(cli);
  std::unique_ptr<cache::AuditVerdictStore> store;
  if (verdict_cache != nullptr) {
    store = std::make_unique<cache::AuditVerdictStore>(
        *verdict_cache, design, options.detector, options.fail_fast);
    options.store = store.get();
  }

  // Observability taps: --trace-out installs a span recorder (Chrome
  // trace_event JSON, one span tree per obligation), --metrics-out enables
  // the counter registry and serializes a JSON-lines run report,
  // --profile-out folds the span tree into a phase-attribution profile
  // (it needs a recorder and the registry even without the other flags),
  // --progress[=interval] starts the live heartbeat + stall watchdog.
  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  const std::string profile_out = cli.get_string("profile-out", "");
  std::unique_ptr<telemetry::TraceRecorder> recorder;
  if (!trace_out.empty() || !profile_out.empty()) {
    recorder = std::make_unique<telemetry::TraceRecorder>();
    telemetry::TraceRecorder::set_global(recorder.get());
  }
  if (!metrics_out.empty() || !profile_out.empty()) {
    telemetry::Registry::global().set_enabled(true);
  }
  std::unique_ptr<telemetry::ProgressReporter> progress;
  if (cli.has("progress")) {
    telemetry::ProgressOptions po;
    po.interval_seconds = cli.get_double("progress", 1.0);
    po.stall_window_seconds = cli.get_double("stall-window", 30.0);
    progress = std::make_unique<telemetry::ProgressReporter>(po);
    telemetry::ProgressReporter::set_global(progress.get());
  }

  util::Stopwatch total;
  core::ParallelDetector detector(design, options);
  const core::DetectionReport report = detector.run();
  const double total_seconds = total.elapsed_seconds();

  if (progress != nullptr) {
    telemetry::ProgressReporter::set_global(nullptr);
    progress->stop();
    if (progress->stall_count() > 0) {
      std::cout << "watchdog: " << progress->stall_count()
                << " stall(s) detected (see metrics records)\n";
    }
  }
  if (recorder != nullptr) {
    telemetry::TraceRecorder::set_global(nullptr);
    if (!trace_out.empty()) {
      if (recorder->write_file(trace_out)) {
        std::cout << "trace written to " << trace_out << " ("
                  << recorder->event_count() << " events)\n";
      } else {
        std::cerr << "cannot write " << trace_out << "\n";
      }
    }
  }
  if (!metrics_out.empty()) {
    telemetry::RunReport metrics;
    core::append_detection_report(
        metrics, design.name,
        core::engine_name(options.detector.engine.kind), report,
        total_seconds);
    core::append_registry_snapshot(metrics, telemetry::Registry::global());
    if (verdict_cache != nullptr) {
      cache::append_cache_record(metrics, *verdict_cache);
    }
    if (progress != nullptr) {
      telemetry::append_stall_records(metrics, *progress);
    }
    if (metrics.write_file(metrics_out)) {
      std::cout << "metrics written to " << metrics_out << " ("
                << metrics.size() << " records)\n";
    } else {
      std::cerr << "cannot write " << metrics_out << "\n";
    }
  }
  if (!profile_out.empty() && recorder != nullptr) {
    const telemetry::Profile profile = telemetry::build_profile(
        *recorder, telemetry::Registry::global().snapshot());
    if (profile.write_file(profile_out)) {
      std::cout << "profile written to " << profile_out << " ("
                << profile.phases.size() << " phases, "
                << profile.obligations.size() << " obligations)\n";
    } else {
      std::cerr << "cannot write " << profile_out << "\n";
    }
    std::cout << "top phases by exclusive time:\n" << profile.top_table(10);
  }

  for (const auto& run : report.runs) {
    std::cout << run.property << ": " << run.check.status << " ("
              << run.check.frames_completed << " frames, " << run.check.seconds
              << " s)\n";
  }
  if (options.detector.engine.kind == core::EngineKind::kPortfolio) {
    std::size_t wins[3] = {0, 0, 0};  // bmc, atpg, pdr
    std::size_t proven = 0;
    for (const auto& run : report.runs) {
      switch (run.check.engine_used) {
        case core::EngineKind::kBmc: ++wins[0]; break;
        case core::EngineKind::kAtpg: ++wins[1]; break;
        case core::EngineKind::kPdr: ++wins[2]; break;
        case core::EngineKind::kPortfolio: break;
      }
      if (run.check.proven_unbounded) ++proven;
    }
    std::cout << "portfolio wins: bmc " << wins[0] << ", atpg " << wins[1]
              << ", pdr " << wins[2] << " (" << proven
              << " proven unbounded)\n";
  }
  if (verdict_cache != nullptr) print_cache_summary(*verdict_cache);
  write_signature(cli.get_string("signature-out", ""), report);
  write_flight(cli.get_string("flight-out", ""), design.name,
               core::engine_name(options.detector.engine.kind), report);
  std::cout << report.summary() << "\n";
  std::cout << "peak RSS: " << util::peak_rss_summary() << "\n";
  if (!report.trojan_found) return 0;
  for (const auto& finding : report.findings) {
    std::cout << "\n" << core::finding_kind_name(finding.kind) << " on "
              << finding.register_name;
    if (!finding.candidate_register.empty()) {
      std::cout << " (via " << finding.candidate_register << ")";
    }
    std::cout << ":\n";
    if (finding.check.witness) {
      std::cout << finding.check.witness->to_string(design.nl);
    }
  }
  return 2;
}

int cmd_prove(const util::CliParser& cli) {
  designs::Design design;
  design.nl = load_design(cli);
  design.spec =
      specdsl::load_spec_file(design.nl, cli.get_string("spec", ""));
  const std::string reg = cli.get_string("register", "");
  const auto* reg_spec = design.spec.find(reg);
  if (reg_spec == nullptr) {
    std::cerr << "register '" << reg << "' has no spec block\n";
    return 1;
  }
  const auto bad = properties::build_corruption_monitor(
      design.nl, *reg_spec, properties::CorruptionMonitorKind::kExact);
  bmc::InductionOptions options;
  options.max_k = static_cast<std::size_t>(cli.get_int("max-k", 8));
  options.time_limit_seconds = cli.get_double("budget", 60.0);
  const auto result = bmc::prove_by_induction(design.nl, bad, options);
  switch (result.status) {
    case bmc::InductionStatus::kProven:
      std::cout << "PROVEN for all time (k=" << result.k_used << ", "
                << result.seconds << " s)\n";
      return 0;
    case bmc::InductionStatus::kBaseViolated:
      std::cout << "TROJAN: counterexample at cycle "
                << result.witness->violation_frame << "\n"
                << result.witness->to_string(design.nl);
      return 2;
    case bmc::InductionStatus::kUnknown:
      std::cout << "UNKNOWN: not k-inductive within the budget (use 'check' "
                   "for a bounded certificate)\n";
      return 1;
  }
  return 1;
}

designs::Design load_design_with_spec(const util::CliParser& cli) {
  designs::Design design;
  design.name = cli.get_string("design", "design");
  design.nl = load_design(cli);
  design.spec = specdsl::load_spec_file(design.nl, cli.get_string("spec", ""));
  if (design.spec.registers.empty()) {
    throw std::runtime_error("spec file declares no registers");
  }
  for (const auto& reg_spec : design.spec.registers) {
    design.critical_registers.push_back(reg_spec.reg);
  }
  return design;
}

int cmd_certify(const util::CliParser& cli) {
  const designs::Design design = load_design_with_spec(cli);

  proof::CertifyOptions options;
  options.detector.engine.kind = parse_engine_flag(cli);
  options.detector.engine.max_frames =
      static_cast<std::size_t>(cli.get_int("frames", 128));
  options.detector.engine.time_limit_seconds = cli.get_double("budget", 60.0);
  options.detector.scan_pseudo_critical = !cli.get_bool("no-scan", false);
  options.detector.check_bypass = !cli.get_bool("no-bypass", false);
  options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));

  const std::string out = cli.get_string("out", "");

  // Certify never reads the cache (certificates need real engine evidence)
  // but writes every verdict through, stamped with the certificate path, so
  // a later `audit --cache-dir` reuses the certified answers.
  const std::unique_ptr<cache::VerdictCache> verdict_cache = open_cache(cli);
  std::unique_ptr<cache::AuditVerdictStore> store;
  if (verdict_cache != nullptr) {
    store = std::make_unique<cache::AuditVerdictStore>(
        *verdict_cache, design, options.detector, /*fail_fast=*/false);
    store->set_cert_ref(out);
    options.store = store.get();
  }

  const proof::Certificate cert = proof::certify(design, options);
  const proof::Json json = proof::certificate_to_json(cert);
  const std::string text =
      cli.get_bool("pretty", false) ? json.dump_pretty() : json.dump() + "\n";

  if (out.empty()) {
    std::cout << text;
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    os << text;
    std::size_t witnesses = 0;
    std::size_t marks = 0;
    for (const auto& record : cert.records) {
      if (record.witness.has_value()) witnesses++;
      if (record.drat.has_value()) marks += record.drat->marks.size();
    }
    std::cout << "certificate written to " << out << " ("
              << cert.records.size() << " obligations, " << witnesses
              << " witnesses, " << marks << " DRAT-proved frames)\n";
  }
  if (verdict_cache != nullptr) print_cache_summary(*verdict_cache);
  // "clean forever" only when every record carries an unbounded proof;
  // a single merely-bounded record caps the whole certificate's claim.
  const bool all_unbounded =
      !cert.records.empty() &&
      std::all_of(cert.records.begin(), cert.records.end(),
                  [](const auto& r) { return r.proven_unbounded; });
  std::cout << (cert.trojan_found
                    ? "TROJAN FOUND (witnesses included in certificate)"
                : all_unbounded
                    ? "clean at all depths (inductive invariants included "
                      "in certificate)"
                    : "clean within the bound (proofs included in certificate)")
            << "\n";
  return cert.trojan_found ? 2 : 0;
}

int cmd_check_cert(const util::CliParser& cli) {
  const std::string path = cli.get_string("cert", "");
  if (path.empty()) throw std::runtime_error("--cert is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  proof::Json json;
  std::string error;
  if (!proof::Json::parse(text, json, &error)) {
    std::cerr << "certificate rejected: " << error << "\n";
    return 1;
  }
  proof::Certificate cert;
  if (!proof::certificate_from_json(json, cert, &error)) {
    std::cerr << "certificate rejected: " << error << "\n";
    return 1;
  }

  const designs::Design design = load_design_with_spec(cli);
  const proof::CertificateCheckResult result =
      proof::check_certificate(cert, design);
  std::cout << result.summary() << "\n";
  return result.ok ? 0 : 1;
}

/// Opens the fleet-shared L2 store named by --l2-dir (always read-write;
/// claim files need write access); null when the flag is absent.
std::unique_ptr<cache::VerdictCache> open_l2(const util::CliParser& cli) {
  const std::string dir = cli.get_string("l2-dir", "");
  if (dir.empty()) return nullptr;
  cache::VerdictCache::Options options;
  options.dir = dir;
  options.mode = cache::CacheMode::kReadWrite;
  const long max_mb = cli.get_int("l2-max-mb", 512);
  options.max_bytes = max_mb <= 0
                          ? 0
                          : static_cast<std::uint64_t>(max_mb) * 1024 * 1024;
  return std::make_unique<cache::VerdictCache>(std::move(options));
}

/// Publishes the resolved listen endpoint (ephemeral TCP ports become
/// concrete here) for whoever launched us — tests, ci.sh, serve-fleet.
void write_endpoint_file(const std::string& path,
                         const std::string& endpoint) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << endpoint << "\n";
}

service::AuditDaemon* g_daemon = nullptr;
fleet::FleetCoordinator* g_coordinator = nullptr;

void handle_stop_signal(int) {
  // stop() joins threads, which is not async-signal-safe in general, but
  // the daemon's accept loop polls with a timeout and every blocking read
  // is shutdown() first, so in practice this terminates promptly; the
  // alternative (a self-pipe) buys little for a CLI tool.
  if (g_daemon != nullptr) g_daemon->stop();
  if (g_coordinator != nullptr) g_coordinator->stop();
}

/// Opens the --events-out sink and installs it as the process-global
/// telemetry::EventLog; the returned handle owns it (and uninstalls on
/// destruction). Null when the flag is absent. --events-max-mb caps the
/// stream: past it the file rotates to FILE.1 and the sequence restarts
/// (0 = unbounded).
std::unique_ptr<telemetry::EventLog> open_event_log(
    const util::CliParser& cli) {
  const std::string path = cli.get_string("events-out", "");
  if (path.empty()) return nullptr;
  const long max_mb = cli.get_int("events-max-mb", 0);
  const std::uint64_t max_bytes =
      max_mb <= 0 ? 0 : static_cast<std::uint64_t>(max_mb) * 1024 * 1024;
  auto log = std::make_unique<telemetry::EventLog>(path, max_bytes);
  if (!log->ok()) throw std::runtime_error("cannot write " + path);
  telemetry::EventLog::set_global(log.get());
  return log;
}

int cmd_serve(const util::CliParser& cli) {
  const std::string endpoint = cli.get_string("socket", "");
  if (endpoint.empty()) throw std::runtime_error("--socket is required");

  const std::unique_ptr<telemetry::EventLog> event_log = open_event_log(cli);
  const std::unique_ptr<cache::VerdictCache> verdict_cache = open_cache(cli);
  const std::unique_ptr<cache::VerdictCache> l2_cache = open_l2(cli);

  service::AuditDaemon::Options options;
  options.endpoint = endpoint;
  options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  options.cache = verdict_cache.get();
  options.l2 = l2_cache.get();
  options.read_timeout_seconds = cli.get_double("read-timeout", 0.0);
  options.sample_interval_ms = cli.get_double("sample-interval-ms", 1000.0);

  service::AuditDaemon daemon(options);
  daemon.start();
  g_daemon = &daemon;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  write_endpoint_file(cli.get_string("port-file", ""),
                      daemon.bound_endpoint());
  std::cout << "audit daemon listening on " << daemon.bound_endpoint();
  if (verdict_cache != nullptr) {
    std::cout << " (cache " << cache_mode_name(verdict_cache->mode()) << " "
              << verdict_cache->dir() << ")";
  }
  if (l2_cache != nullptr) std::cout << " (l2 " << l2_cache->dir() << ")";
  std::cout << "\n" << std::flush;

  daemon.wait();
  daemon.stop();
  g_daemon = nullptr;

  std::cout << "daemon stopped after " << daemon.jobs_completed()
            << " job(s)\n";
  if (verdict_cache != nullptr) print_cache_summary(*verdict_cache);
  return 0;
}

/// Path of the running binary, captured in main() for --spawn re-exec.
std::string g_self_exe;

struct SpawnedWorker {
  pid_t pid = -1;
  std::string endpoint_file;
};

/// Forks one `serve` worker on an ephemeral TCP port; the child publishes
/// its resolved endpoint through `endpoint_file`.
SpawnedWorker spawn_worker(const util::CliParser& cli,
                           const std::string& run_dir, std::size_t index) {
  SpawnedWorker worker;
  worker.endpoint_file =
      run_dir + "/worker" + std::to_string(index) + ".endpoint";
  std::vector<std::string> args = {
      g_self_exe,    "serve",
      "--socket",    "tcp:127.0.0.1:0",
      "--port-file", worker.endpoint_file,
      "--cache-dir", run_dir + "/l1-" + std::to_string(index),
      "--jobs",      std::to_string(cli.get_int("worker-jobs", 0)),
  };
  const std::string l2_dir = cli.get_string("l2-dir", "");
  if (!l2_dir.empty()) {
    args.push_back("--l2-dir");
    args.push_back(l2_dir);
    args.push_back("--l2-max-mb");
    args.push_back(std::to_string(cli.get_int("l2-max-mb", 512)));
  }
  // Workers inherit the coordinator's sampling cadence so a fleet scrape
  // sees every registry windowed on the same clock.
  args.push_back("--sample-interval-ms");
  args.push_back(std::to_string(cli.get_double("sample-interval-ms", 1000.0)));
  if (!cli.get_string("events-out", "").empty()) {
    // The coordinator's event log covers fleet-level events; each spawned
    // worker gets its own sink for what only it observes (claim steals,
    // corrupt cache entries).
    args.push_back("--events-out");
    args.push_back(run_dir + "/worker" + std::to_string(index) +
                   ".events.jsonl");
    args.push_back("--events-max-mb");
    args.push_back(std::to_string(cli.get_int("events-max-mb", 0)));
  }
  worker.pid = ::fork();
  if (worker.pid < 0) throw std::runtime_error("fork failed");
  if (worker.pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return worker;
}

/// Waits for a spawned worker to publish its endpoint (or die trying).
std::string await_worker_endpoint(const SpawnedWorker& worker) {
  for (int i = 0; i < 500; ++i) {  // 10 s at 20 ms
    std::ifstream in(worker.endpoint_file);
    std::string endpoint;
    if (in && std::getline(in, endpoint) && !endpoint.empty()) {
      return endpoint;
    }
    int status = 0;
    if (::waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
      throw std::runtime_error("spawned worker exited before listening");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  throw std::runtime_error("spawned worker never published " +
                           worker.endpoint_file);
}

int cmd_serve_fleet(const util::CliParser& cli) {
  const std::string endpoint = cli.get_string("socket", "");
  if (endpoint.empty()) throw std::runtime_error("--socket is required");

  const std::unique_ptr<telemetry::EventLog> event_log = open_event_log(cli);

  fleet::FleetCoordinator::Options options;
  options.endpoint = endpoint;
  options.trace_out = cli.get_string("trace-out", "");
  options.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 64));
  options.retry_after_ms =
      static_cast<std::uint64_t>(cli.get_int("retry-after-ms", 200));
  options.read_timeout_seconds = cli.get_double("read-timeout", 0.0);
  options.worker_timeout_seconds = cli.get_double("worker-timeout", 600.0);
  options.health_interval_seconds = cli.get_double("health-interval", 2.0);
  options.sample_interval_ms = cli.get_double("sample-interval-ms", 1000.0);
  options.slo_job_ms = static_cast<std::uint64_t>(cli.get_int("slo-ms", 0));
  options.slo_obligation_ms =
      static_cast<std::uint64_t>(cli.get_int("slo-obligation-ms", 0));

  const std::string workers_flag = cli.get_string("workers", "");
  const long spawn_count = cli.get_int("spawn", 0);
  if (workers_flag.empty() == (spawn_count <= 0)) {
    throw std::runtime_error(
        "serve-fleet needs exactly one of --workers or --spawn");
  }

  std::vector<SpawnedWorker> spawned;
  std::string run_dir = cli.get_string("run-dir", "");
  if (spawn_count > 0) {
    if (run_dir.empty()) {
      char tmpl[] = "/tmp/ts_fleet_XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        throw std::runtime_error("mkdtemp failed");
      }
      run_dir = tmpl;
    } else {
      // Workers open their event logs before their caches, so the run dir
      // must exist before the first fork — create it rather than racing on
      // the verdict cache's own create_directories.
      std::error_code ec;
      std::filesystem::create_directories(run_dir, ec);
      if (ec) {
        throw std::runtime_error("cannot create --run-dir " + run_dir + ": " +
                                 ec.message());
      }
    }
    for (long i = 0; i < spawn_count; ++i) {
      spawned.push_back(
          spawn_worker(cli, run_dir, static_cast<std::size_t>(i)));
    }
    for (const SpawnedWorker& worker : spawned) {
      options.workers.push_back(await_worker_endpoint(worker));
    }
  } else {
    std::istringstream in(workers_flag);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (!item.empty()) options.workers.push_back(item);
    }
  }

  int exit_code = 0;
  {
    fleet::FleetCoordinator coordinator(options);
    try {
      coordinator.start();
      g_coordinator = &coordinator;
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);

      write_endpoint_file(cli.get_string("port-file", ""),
                          coordinator.bound_endpoint());
      std::cout << "fleet coordinator on " << coordinator.bound_endpoint()
                << " over " << options.workers.size() << " worker(s):";
      for (const std::string& worker : options.workers) {
        std::cout << " " << worker;
      }
      std::cout << "\n" << std::flush;

      coordinator.wait();
      coordinator.stop();
      g_coordinator = nullptr;
      std::cout << "coordinator stopped after "
                << coordinator.jobs_completed() << " job(s), "
                << coordinator.retry_after_sent() << " refused, "
                << coordinator.reshards() << " re-shard(s)\n";
    } catch (...) {
      g_coordinator = nullptr;
      for (const SpawnedWorker& worker : spawned) {
        ::kill(worker.pid, SIGTERM);
        ::waitpid(worker.pid, nullptr, 0);
      }
      throw;
    }
  }
  for (const SpawnedWorker& worker : spawned) {
    ::kill(worker.pid, SIGTERM);
    ::waitpid(worker.pid, nullptr, 0);
  }
  return exit_code;
}

/// Renders one JSON scalar for a table cell.
std::string cell_json(const proof::Json& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "yes" : "no";
  if (value.is_int()) return std::to_string(value.as_int());
  if (value.is_number()) return util::cell_double(value.as_double(), 3);
  return value.dump();
}

/// Prints the "slowest" tail-attribution rows (from a stats reply or a
/// fleet report) as an aligned table; no-op when absent or empty.
void print_slowest_table(const proof::Json& slowest) {
  if (!slowest.is_array() || slowest.items().empty()) return;
  util::Table table({"property", "worker", "total_us", "phases"});
  for (const proof::Json& row : slowest.items()) {
    if (!row.is_object()) continue;
    const auto str = [&row](const char* key) -> std::string {
      const proof::Json* f = row.find(key);
      return f != nullptr ? cell_json(*f) : "";
    };
    std::string phases;
    const proof::Json* phase_obj = row.find("phases");
    if (phase_obj != nullptr && phase_obj->is_object()) {
      for (const auto& [name, us] : phase_obj->entries()) {
        if (!phases.empty()) phases += " ";
        phases += name + "=" + cell_json(us);
      }
    }
    table.add_row({str("property"), str("worker"), str("total_us"), phases});
  }
  std::cout << "slowest obligations:\n";
  table.print(std::cout);
}

/// Prints one telemetry Registry snapshot (counters + timer histograms).
void print_telemetry(const std::string& title, const proof::Json& snapshot) {
  if (!snapshot.is_object()) return;
  const proof::Json* counters = snapshot.find("counters");
  if (counters != nullptr && counters->is_object() && counters->size() > 0) {
    util::Table table({"counter", "value"});
    for (const auto& [name, value] : counters->entries()) {
      table.add_row({name, cell_json(value)});
    }
    std::cout << title << " counters:\n";
    table.print(std::cout);
  }
  const proof::Json* histograms = snapshot.find("histograms");
  if (histograms != nullptr && histograms->is_object() &&
      histograms->size() > 0) {
    util::Table table({"timer", "count", "sum_s", "min_s", "max_s"});
    for (const auto& [name, h] : histograms->entries()) {
      if (!h.is_object()) continue;
      const auto str = [&h](const char* key) -> std::string {
        const proof::Json* f = h.find(key);
        return f != nullptr ? cell_json(*f) : "";
      };
      table.add_row(
          {name, str("count"), str("sum_s"), str("min_s"), str("max_s")});
    }
    std::cout << title << " timers:\n";
    table.print(std::cout);
  }
}

/// Pretty-prints a stats reply: scalar fields, per-worker breakdown,
/// merged + own telemetry, and the slowest-obligations table.
void print_stats(const proof::Json& stats) {
  util::Table fields({"field", "value"});
  for (const auto& [key, value] : stats.entries()) {
    if (value.is_object() || value.is_array()) continue;
    if (key == "type") continue;
    fields.add_row({key, cell_json(value)});
  }
  fields.print(std::cout);

  const proof::Json* workers = stats.find("workers");
  if (workers != nullptr && workers->is_array() &&
      !workers->items().empty()) {
    util::Table table({"worker", "alive", "outstanding", "pid", "uptime_s",
                       "jobs_completed", "bad_requests"});
    for (const proof::Json& w : workers->items()) {
      if (!w.is_object()) continue;
      const auto str = [&w](const char* key) -> std::string {
        const proof::Json* f = w.find(key);
        return f != nullptr ? cell_json(*f) : "";
      };
      table.add_row({str("endpoint"), str("alive"), str("outstanding"),
                     str("pid"), str("uptime_s"), str("jobs_completed"),
                     str("bad_requests")});
    }
    std::cout << "workers:\n";
    table.print(std::cout);
  }

  const proof::Json* merged = stats.find("telemetry");
  if (merged != nullptr) {
    print_telemetry(workers != nullptr ? "merged worker" : "telemetry",
                    *merged);
  }
  const proof::Json* own = stats.find("coordinator_telemetry");
  if (own != nullptr) print_telemetry("coordinator", *own);

  const proof::Json* slowest = stats.find("slowest");
  if (slowest != nullptr) print_slowest_table(*slowest);
}

/// `submit --stats`: one stats round-trip, printed as tables or raw JSON.
int cmd_submit_stats(const util::CliParser& cli, const std::string& endpoint,
                     const service::ConnectRetry& retry) {
  service::Client client(endpoint, retry);
  client.send_line(service::control_request_line("stats"));
  proof::Json response;
  if (!client.read_response(response)) {
    std::cerr << "error: connection closed before a stats reply\n";
    return 1;
  }
  const proof::Json* type = response.find("type");
  if (type == nullptr || !type->is_string() || type->as_string() != "stats") {
    std::cerr << "error: unexpected reply: " << response.dump() << "\n";
    return 1;
  }
  if (cli.get_bool("json", false)) {
    std::cout << response.dump_pretty() << "\n";
  } else {
    print_stats(response);
  }
  return 0;
}

/// `submit --metrics`: one metrics round-trip. The Prometheus text
/// exposition is unwrapped from its NDJSON envelope and written raw
/// (stdout, or --out FILE) — ready for a scraper, promtool, or
/// check_metrics.py's exposition validator. Against a coordinator the
/// scrape fans out to every live worker and merges registries first.
int cmd_submit_metrics(const util::CliParser& cli, const std::string& endpoint,
                       const service::ConnectRetry& retry) {
  service::Client client(endpoint, retry);
  client.send_line(service::control_request_line("metrics"));
  proof::Json response;
  if (!client.read_response(response)) {
    std::cerr << "error: connection closed before a metrics reply\n";
    return 1;
  }
  const proof::Json* type = response.find("type");
  if (type == nullptr || !type->is_string() ||
      type->as_string() != "metrics") {
    std::cerr << "error: unexpected reply: " << response.dump() << "\n";
    return 1;
  }
  const proof::Json* body = response.find("body");
  if (body == nullptr || !body->is_string()) {
    std::cerr << "error: metrics reply carries no body\n";
    return 1;
  }
  const std::string out = cli.get_string("out", "");
  if (out.empty()) {
    std::cout << body->as_string();
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    os << body->as_string();
    std::cout << "exposition written to " << out << "\n";
  }
  return 0;
}

int cmd_submit(const util::CliParser& cli) {
  const std::string endpoint = cli.get_string("socket", "");
  if (endpoint.empty()) throw std::runtime_error("--socket is required");

  service::ConnectRetry submit_retry;
  submit_retry.attempts = static_cast<int>(cli.get_int("connect-retries", 1));
  submit_retry.base_delay_ms = cli.get_double("connect-delay-ms", 50.0);
  if (cli.get_bool("stats", false)) {
    return cmd_submit_stats(cli, endpoint, submit_retry);
  }
  if (cli.get_bool("metrics", false)) {
    return cmd_submit_metrics(cli, endpoint, submit_retry);
  }

  service::AuditJob job;
  job.id = cli.get_string("id", "job");
  job.design_path = cli.get_string("design", "");
  job.spec_path = cli.get_string("spec", "");
  if (job.design_path.empty()) throw std::runtime_error("--design is required");
  if (job.spec_path.empty()) throw std::runtime_error("--spec is required");
  job.engine = parse_engine_flag(cli);
  job.frames = static_cast<std::size_t>(cli.get_int("frames", 128));
  job.budget = cli.get_double("budget", 60.0);
  job.scan_pseudo_critical = !cli.get_bool("no-scan", false);
  job.check_bypass = !cli.get_bool("no-bypass", false);

  const bool quiet = cli.get_bool("quiet", false);
  const int overload_retries =
      static_cast<int>(cli.get_int("overload-retries", 0));
  // Fleet reports carry a "slowest" tail-attribution table; captured here
  // from the response stream and printed after the summary.
  auto slowest = std::make_shared<proof::Json>();
  const service::SubmitResult result = service::submit_audit_with_retry(
      endpoint, job, submit_retry, overload_retries,
      [quiet, slowest](const proof::Json& response) {
        const proof::Json* type = response.find("type");
        if (type == nullptr || !type->is_string()) return;
        if (type->as_string() == "report") {
          const proof::Json* tail = response.find("slowest");
          if (tail != nullptr) *slowest = *tail;
          return;
        }
        if (quiet || type->as_string() != "obligation") return;
        const auto str = [&response](const char* key) -> std::string {
          const proof::Json* f = response.find(key);
          return f != nullptr && f->is_string() ? f->as_string() : "";
        };
        std::cout << str("property") << ": " << str("status") << " ["
                  << str("source") << "]\n";
      },
      [quiet](std::uint64_t delay_ms) {
        if (quiet) return;
        std::cerr << "fleet busy; retrying in " << delay_ms << " ms\n";
      });

  if (!result.ok) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }
  std::cout << result.summary << "\n"
            << "served: " << result.cache_hits << " from cache, "
            << result.shared << " shared in-flight, " << result.computed
            << " computed\n";
  if (!quiet) print_slowest_table(*slowest);
  const std::string signature_out = cli.get_string("signature-out", "");
  if (!signature_out.empty()) {
    std::ofstream os(signature_out);
    if (!os) throw std::runtime_error("cannot write " + signature_out);
    os << result.signature;
    std::cout << "signature written to " << signature_out << "\n";
  }
  return result.trojan_found ? 2 : 0;
}

// ---- top: live monitoring dashboard ---------------------------------------

volatile std::sig_atomic_t g_top_interrupted = 0;
void handle_top_signal(int) { g_top_interrupted = 1; }

/// Eight-level unicode sparkline of `values`, scaled to their own peak.
std::string sparkline(const std::vector<double>& values) {
  static const char* const kBars[8] = {"▁", "▂", "▃",
                                       "▄", "▅", "▆",
                                       "▇", "█"};
  double peak = 0.0;
  for (const double v : values) peak = std::max(peak, v);
  std::string out;
  for (const double v : values) {
    int level = 0;
    if (peak > 0.0 && v > 0.0) {
      level = std::min(7, std::max(0, static_cast<int>(v / peak * 7.0 + 0.5)));
    }
    out += kBars[level];
  }
  return out;
}

/// Numeric field of a stats object, 0.0 when absent or non-numeric.
double num_field(const proof::Json& obj, const char* key) {
  const proof::Json* f = obj.find(key);
  return f != nullptr && f->is_number() ? f->as_double() : 0.0;
}

/// Pulls one counter's per-window rate history (oldest first) out of a
/// stats reply's "series" array. Windows where the counter did not move
/// contribute 0 (the series only stores moved counters).
std::vector<double> series_rates(const proof::Json& stats,
                                 const std::string& counter) {
  std::vector<double> rates;
  const proof::Json* series = stats.find("series");
  if (series == nullptr || !series->is_array()) return rates;
  for (const proof::Json& window : series->items()) {
    double rate = 0.0;
    const proof::Json* counters = window.find("counters");
    if (counters != nullptr && counters->is_object()) {
      const proof::Json* c = counters->find(counter);
      if (c != nullptr) rate = num_field(*c, "rate_per_s");
    }
    rates.push_back(rate);
  }
  return rates;
}

/// Poll-to-poll state for derived rates (per-worker jobs/s).
struct TopState {
  std::map<std::string, double> prev_worker_jobs;
  double prev_jobs = -1.0;
  std::chrono::steady_clock::time_point prev_time;
  bool have_prev = false;
};

/// Renders one dashboard frame from a stats reply. The whole frame is
/// assembled off-screen and written in one shot (less flicker on redraw).
void render_top(const proof::Json& stats, const std::string& endpoint,
                TopState& state, bool clear) {
  const auto now = std::chrono::steady_clock::now();
  const double dt = state.have_prev
                        ? std::chrono::duration<double>(now - state.prev_time)
                              .count()
                        : 0.0;
  const double jobs = num_field(stats, "jobs_completed");

  std::ostringstream out;
  const proof::Json* role = stats.find("role");
  out << "trojanscout top — " << endpoint;
  if (role != nullptr && role->is_string()) {
    out << " (" << role->as_string() << ")";
  }
  out << "\n";

  out << "uptime " << util::cell_double(num_field(stats, "uptime_s"), 1)
      << " s   jobs " << static_cast<std::uint64_t>(jobs);
  if (dt > 0.0 && state.prev_jobs >= 0.0) {
    out << " ("
        << util::cell_double(std::max(0.0, jobs - state.prev_jobs) / dt, 2)
        << "/s)";
  }

  // Cache hit rate: prefer the daemon's own VerdictCache counters; a
  // coordinator reply carries them inside the merged telemetry registry.
  double hits = num_field(stats, "cache_hits");
  double misses = num_field(stats, "cache_misses");
  const proof::Json* tel = stats.find("telemetry");
  if (hits + misses <= 0.0 && tel != nullptr && tel->is_object()) {
    const proof::Json* counters = tel->find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->entries()) {
        if (name == "cache.hit" || name == "cache.l1_hit" ||
            name == "cache.l2_hit") {
          hits += value.as_double();
        } else if (name == "cache.miss") {
          misses += value.as_double();
        }
      }
    }
  }
  if (hits + misses > 0.0) {
    out << "   cache hit "
        << util::cell_double(100.0 * hits / (hits + misses), 1) << "%";
  }

  const proof::Json* workers = stats.find("workers");
  const bool fleet = workers != nullptr && workers->is_array();
  if (fleet) {
    double queue = 0.0;
    for (const proof::Json& w : workers->items()) {
      queue += num_field(w, "outstanding");
    }
    out << "   queue depth " << static_cast<std::uint64_t>(queue);
  }
  const proof::Json* slo = stats.find("slo");
  if (slo != nullptr && slo->is_object() &&
      (num_field(*slo, "job_ms") > 0.0 ||
       num_field(*slo, "obligation_ms") > 0.0)) {
    out << "   slo breaches "
        << static_cast<std::uint64_t>(num_field(*slo, "job_breaches"))
        << " job / "
        << static_cast<std::uint64_t>(num_field(*slo, "obligation_breaches"))
        << " obligation";
  }
  out << "\n";

  // Sparkline rate history from the sampler's windowed series.
  const std::string prefix = fleet ? "fleet" : "service";
  for (const std::string suffix : {".jobs", ".obligations"}) {
    const std::string counter = prefix + suffix;
    const std::vector<double> rates = series_rates(stats, counter);
    if (rates.empty()) continue;
    out << counter << "/s  " << sparkline(rates) << "  now "
        << util::cell_double(rates.back(), 2) << "/s\n";
  }

  if (clear) std::cout << "\x1b[H\x1b[J";
  std::cout << out.str();

  if (fleet && !workers->items().empty()) {
    util::Table table({"worker", "alive", "responding", "outstanding",
                       "jobs", "jobs/s"});
    for (const proof::Json& w : workers->items()) {
      if (!w.is_object()) continue;
      const proof::Json* ep = w.find("endpoint");
      const std::string name =
          ep != nullptr && ep->is_string() ? ep->as_string() : "?";
      const double worker_jobs = num_field(w, "jobs_completed");
      std::string rate = "-";
      const auto it = state.prev_worker_jobs.find(name);
      if (it != state.prev_worker_jobs.end() && dt > 0.0) {
        rate = util::cell_double(
            std::max(0.0, worker_jobs - it->second) / dt, 2);
      }
      state.prev_worker_jobs[name] = worker_jobs;
      const auto str = [&w](const char* key) -> std::string {
        const proof::Json* f = w.find(key);
        return f != nullptr ? cell_json(*f) : "";
      };
      table.add_row({name, str("alive"), str("responding"),
                     str("outstanding"), str("jobs_completed"), rate});
    }
    std::cout << "workers:\n";
    table.print(std::cout);
  }
  const proof::Json* slowest = stats.find("slowest");
  if (slowest != nullptr) print_slowest_table(*slowest);
  std::cout.flush();

  state.prev_jobs = jobs;
  state.prev_time = now;
  state.have_prev = true;
}

/// `top`: polls a daemon or coordinator's stats verb into a live
/// refreshing dashboard. --once (= --polls 1) and --json make it
/// scriptable: one machine-readable snapshot per poll on stdout.
int cmd_top(const util::CliParser& cli) {
  const std::string endpoint = cli.get_string("socket", "");
  if (endpoint.empty()) throw std::runtime_error("--socket is required");
  const double interval_ms = cli.get_double("interval-ms", 1000.0);
  const bool json = cli.get_bool("json", false);
  long polls = cli.get_int("polls", 0);  // 0 = until SIGINT
  if (cli.get_bool("once", false)) polls = 1;

  service::ConnectRetry retry;
  retry.attempts = static_cast<int>(cli.get_int("connect-retries", 1));
  retry.base_delay_ms = cli.get_double("connect-delay-ms", 50.0);

  std::signal(SIGINT, handle_top_signal);
  std::signal(SIGTERM, handle_top_signal);

  TopState state;
  long done = 0;
  bool first = true;
  while (g_top_interrupted == 0) {
    proof::Json stats;
    {
      service::Client client(endpoint, retry);
      client.send_line(service::control_request_line("stats"));
      if (!client.read_response(stats)) {
        std::cerr << "error: connection closed before a stats reply\n";
        return 1;
      }
    }
    const proof::Json* type = stats.find("type");
    if (type == nullptr || !type->is_string() ||
        type->as_string() != "stats") {
      std::cerr << "error: unexpected reply: " << stats.dump() << "\n";
      return 1;
    }
    if (json) {
      std::cout << stats.dump_pretty() << "\n" << std::flush;
    } else {
      // Redraw in place only on a terminal; piped output stays appendable.
      render_top(stats, endpoint, state,
                 /*clear=*/!first && ::isatty(STDOUT_FILENO) != 0);
    }
    first = false;
    if (polls > 0 && ++done >= polls) break;
    // Sleep in short slices so SIGINT lands promptly between polls.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(interval_ms);
    while (g_top_interrupted == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}

int cmd_fuzz(const util::CliParser& cli) {
  fuzz::CorpusOptions corpus_options;
  corpus_options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  corpus_options.count = static_cast<std::size_t>(cli.get_int("count", 100));
  const std::string family = cli.get_string("design", "all");
  if (family != "all") corpus_options.families = {family};
  corpus_options.max_sequence_length =
      static_cast<std::size_t>(cli.get_int("max-seq", 6));

  fuzz::HarnessOptions harness_options;
  harness_options.engine = parse_engine_flag(cli);
  harness_options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 2));
  harness_options.frames_slack = static_cast<std::size_t>(
      cli.get_int("frames-slack",
                  static_cast<long long>(harness_options.frames_slack)));
  harness_options.frames_cap = static_cast<std::size_t>(cli.get_int(
      "frames-cap", static_cast<long long>(harness_options.frames_cap)));
  harness_options.budget_seconds = cli.get_double("budget", 30.0);
  harness_options.differential = !cli.get_bool("no-differential", false);
  harness_options.check_clean = !cli.get_bool("no-clean", false);
  harness_options.cache_dir = cli.get_string("cache-dir", "");
  const std::string inject = cli.get_string("inject-failure", "");
  if (!inject.empty()) {
    harness_options.inject_failure = [inject](const fuzz::MutationSpec& s) {
      return s.name().find(inject) != std::string::npos;
    };
  }
  const bool quiet = cli.get_bool("quiet", false);

  const std::vector<fuzz::MutationSpec> corpus =
      fuzz::generate_corpus(corpus_options);
  fuzz::CorpusHarness harness(harness_options);
  const fuzz::CorpusReport report = harness.run(corpus, corpus_options.seed);

  // Everything on stdout is deterministic (a pure function of seed and
  // configuration); wall-clock quantiles go to stderr so two runs of the
  // same sweep stay byte-identical on stdout.
  if (!quiet) {
    for (std::size_t i = 0; i < report.variants.size(); ++i) {
      const fuzz::VariantOutcome& v = report.variants[i];
      std::cout << "[" << i << "] " << v.spec.name() << " frames=" << v.frames;
      if (v.reachable) {
        std::cout << " fires@" << v.fire_frame;
      } else {
        std::cout << (v.deep ? " deep" : " unreachable");
      }
      if (v.detected) {
        std::cout << " detected(" << v.finding_property << ")";
      } else {
        std::cout << " clean";
      }
      std::cout << (v.ok() ? "" : " FAIL: " + v.failure) << "\n";
    }
    for (const auto& c : report.clean) {
      std::cout << "clean " << c.family << ": "
                << (c.pass ? "pass" : "FAIL " + c.detail) << " ("
                << c.obligations << " obligations, frames=" << c.frames
                << (c.scanned ? ", scanned" : "") << ")\n";
    }
  }
  std::cout << report.summary() << "\n";
  for (const auto& q : report.latency) {
    std::cerr << "latency[" << q.engine << "]: p50=" << q.p50_seconds
              << "s p90=" << q.p90_seconds << "s p99=" << q.p99_seconds
              << "s over " << q.samples << " obligations ("
              << q.total_seconds << "s engine time)\n";
  }

  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    const bool timing = !cli.get_bool("no-timing", false);
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    os << report.to_json(timing).dump_pretty() << "\n";
    std::cout << "corpus written to " << out
              << (timing ? "" : " (timing stripped)") << "\n";
  }
  const std::string signature_out = cli.get_string("signature-out", "");
  if (!signature_out.empty()) {
    std::ofstream os(signature_out);
    if (!os) throw std::runtime_error("cannot write " + signature_out);
    os << report.signature();
    std::cout << "signature written to " << signature_out << "\n";
  }

  bool failed = report.false_positive_count > 0 || report.failure_count > 0;
  const double min_rate = cli.get_double("min-rate", 0.95);
  if (report.detection_rate < min_rate) {
    std::cout << "detection rate below --min-rate=" << min_rate << "\n";
    failed = true;
  }

  if (cli.get_bool("shrink", false) && report.failure_count > 0) {
    for (const auto& v : report.variants) {
      if (v.ok()) continue;
      std::cout << "shrinking failing variant " << v.spec.name() << " ...\n";
      const fuzz::MutationSpec minimal = harness.shrink(v.spec);
      std::cout << "minimal repro: " << minimal.name() << "\n"
                << minimal.to_json().dump_pretty() << "\n";
      break;
    }
  }
  return failed ? 1 : 0;
}

int cmd_gen(const util::CliParser& cli) {
  const std::string family = cli.get_string("family", "mc8051");
  const std::string trojan = cli.get_string("trojan", "");
  designs::Design design;
  if (trojan.empty()) {
    design = designs::build_clean(family);
  } else {
    bool found = false;
    for (const auto& info : designs::trojan_benchmarks()) {
      if (info.name == trojan) {
        design = info.build(true);
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown trojan '" << trojan << "'; names:";
      for (const auto& info : designs::trojan_benchmarks()) {
        std::cerr << " " << info.name;
      }
      std::cerr << "\n";
      return 1;
    }
  }
  const std::string out = cli.get_string("out", "");
  if (out.empty()) {
    verilog::write_verilog(std::cout, design.nl, design.name);
  } else {
    std::ofstream os(out);
    verilog::write_verilog(os, design.nl, design.name);
    std::cout << "wrote " << out << " (" << design.nl.size() << " gates)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::cout << "trojanscout " << TROJANSCOUT_GIT_REV << "\n";
    return 0;
  }
  g_self_exe = argv[0];
  const util::CliParser cli(argc - 1, argv + 1);
  try {
    if (command == "info") return cmd_info(cli);
    if (command == "check") return cmd_check(cli);
    if (command == "audit") return cmd_audit(cli);
    if (command == "prove") return cmd_prove(cli);
    if (command == "gen") return cmd_gen(cli);
    if (command == "fuzz") return cmd_fuzz(cli);
    if (command == "certify") return cmd_certify(cli);
    if (command == "check-cert") return cmd_check_cert(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "serve-fleet") return cmd_serve_fleet(cli);
    if (command == "submit") return cmd_submit(cli);
    if (command == "top") return cmd_top(cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
