#!/bin/sh
# CI driver: builds and tests the tree three times —
#   1. a plain Release-ish build running the full suite,
#   2. a ThreadSanitizer build re-running the suite (the parallel property
#      scheduler, thread pool, and lazy netlist caches execute under TSan,
#      with the equivalence tests exercising jobs > 1), and
#   3. an AddressSanitizer + UndefinedBehaviorSanitizer build (the CDCL
#      solver, DRAT checker, and certificate (de)serializers are dense
#      with raw index arithmetic and byte-level parsing of untrusted
#      certificate input — exactly what ASan/UBSan catch).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

prefix="${1:-build-ci}"
src="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  name="$1"
  shift
  dir="${prefix}-${name}"
  echo "=== [$name] configure -> $dir ==="
  cmake -S "$src" -B "$dir" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  if [ "$name" = "release" ]; then
    # Fast-feedback lane: the sub-second test bulk plus the fuzz unit
    # tests (ctest LABELS quick/fuzz) fail within seconds, before the
    # slow whole-catalog sweeps in the full run below get a chance to
    # burn minutes on a broken tree.
    echo "=== [$name] ctest quick lane ==="
    (cd "$dir" && ctest -L 'quick|fuzz' --output-on-failure -j "$jobs")
  fi
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config release -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Observability leg: quick-mode bench runs emitting BENCH_<name>.json
# history artifacts gated against the committed baselines, a small audit
# producing trace/profile/metrics/progress artifacts, and schema
# validation over everything. All artifacts are archived under
# ${prefix}-release/artifacts/. Guarded on python3 so the sanitizer-only
# environments without it still pass.
if command -v python3 >/dev/null 2>&1; then
  rel="${prefix}-release"
  art="$rel/artifacts"
  mkdir -p "$art"

  echo "=== [release] quick benches -> BENCH history artifacts ==="
  "$rel/bench/bench_table1" --only=MC8051-T800 --budget=5 --depth-budget=1 \
      --repeats=3 --bench-out="$art/BENCH_table1.json" \
      --metrics-out="$art/table1.jsonl"
  "$rel/bench/bench_table2" --repeats=3 \
      --bench-out="$art/BENCH_table2.json" --metrics-out="$art/table2.jsonl"
  "$rel/bench/bench_table3" --only=MC8051-T800 --budget=5 --depth-budget=1 \
      --bench-out="$art/BENCH_table3.json" --metrics-out="$art/table3.jsonl"
  "$rel/bench/bench_parallel_scaling" --only=MC8051-T800 --frames=6 \
      --bench-out="$art/BENCH_parallel_scaling.json" \
      --metrics-out="$art/parallel_scaling.jsonl"
  "$rel/bench/bench_corpus" --repeats=3 --count=24 \
      --bench-out="$art/BENCH_corpus.json"
  "$rel/bench/bench_portfolio" --budget=5 --frames=12 --repeats=3 \
      --bench-out="$art/BENCH_portfolio.json" \
      --metrics-out="$art/portfolio.jsonl"
  (cd "$src" && "$rel/bench/bench_service_throughput" --repeats=3 \
      --clients=4 --per-client=4 --frames=6 \
      --bench-out="$art/BENCH_service_throughput.json")

  echo "=== [release] fuzz smoke: mutation corpus differential harness ==="
  # The seeded sweep re-asserts the harness's three oracles (no clean-design
  # false positives, every simulator-reachable mutant detected, jobs-
  # invariant signatures). CI runs a 40-variant corpus; nightly jobs export
  # TROJANSCOUT_FUZZ_COUNT=200 for the full Section-4 style sweep.
  fuzz_count="${TROJANSCOUT_FUZZ_COUNT:-40}"
  "$rel/tools/trojanscout_cli" fuzz --seed=42 --count="$fuzz_count" \
      --jobs=2 --out="$art/corpus.json" \
      --signature-out="$art/corpus_sig_jobs2" >"$art/fuzz_jobs2.log" 2>&1
  "$rel/tools/trojanscout_cli" fuzz --seed=42 --count="$fuzz_count" \
      --jobs=4 \
      --signature-out="$art/corpus_sig_jobs4" >"$art/fuzz_jobs4.log" 2>&1
  if ! cmp -s "$art/corpus_sig_jobs2" "$art/corpus_sig_jobs4"; then
    echo "FAIL: corpus signature depends on --jobs (determinism oracle)"
    exit 1
  fi

  echo "=== [release] audit observability artifacts ==="
  "$rel/tools/trojanscout_cli" gen --family=mc8051 --trojan=MC8051-T800 \
      --out="$art/ip.v"
  # Exit 2 = trojan found, which is the expected verdict on this IP.
  status=0
  "$rel/tools/trojanscout_cli" audit --design="$art/ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --frames=8 --jobs=2 \
      --progress=0.2 --stall-window=30 \
      --trace-out="$art/audit_trace.json" \
      --profile-out="$art/audit_profile.json" \
      --metrics-out="$art/audit_metrics.jsonl" \
      >"$art/audit_progress.stdout" 2>"$art/audit_progress.stderr" \
      || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: audit expected exit 2 (trojan found), got $status"
    exit 1
  fi
  if ! grep -q '\[progress\]' "$art/audit_progress.stderr"; then
    echo "FAIL: --progress produced no heartbeat on stderr"
    exit 1
  fi
  # Progress is opt-in: without the flag the heartbeat must be byte-absent
  # from both streams.
  status=0
  "$rel/tools/trojanscout_cli" audit --design="$art/ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --frames=8 --jobs=2 \
      >"$art/audit_plain.stdout" 2>"$art/audit_plain.stderr" || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: plain audit expected exit 2 (trojan found), got $status"
    exit 1
  fi
  if grep -q '\[progress\]' "$art/audit_plain.stdout" \
      "$art/audit_plain.stderr"; then
    echo "FAIL: heartbeat output present without --progress"
    exit 1
  fi

  echo "=== [release] portfolio smoke (race determinism + unbounded proofs) ==="
  # The three-engine race on the Trojaned catalog IP must still convict
  # (exit 2), regardless of which leg wins the race.
  status=0
  "$rel/tools/trojanscout_cli" audit --design="$art/ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --engine=portfolio --frames=8 \
      --jobs=2 >"$art/portfolio_trojan.stdout" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: portfolio audit expected exit 2 (trojan found), got $status"
    exit 1
  fi
  # On the clean IP the PDR leg must win with unbounded proofs, and the
  # report signature must not depend on --jobs (the race's verdict
  # selection is deterministic; only wall clock is racy). --no-scan: the
  # pseudo-critical obligations are expected-violated even on clean
  # designs and would drown the proven-unbounded signal.
  "$rel/tools/trojanscout_cli" gen --family=mc8051 --out="$art/clean_ip.v"
  "$rel/tools/trojanscout_cli" audit --design="$art/clean_ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --engine=portfolio --frames=8 \
      --no-scan --jobs=1 --signature-out="$art/sig_portfolio_jobs1" \
      --metrics-out="$art/portfolio_audit_metrics.jsonl" \
      >"$art/portfolio_clean.stdout" 2>&1
  "$rel/tools/trojanscout_cli" audit --design="$art/clean_ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --engine=portfolio --frames=8 \
      --no-scan --jobs=4 --signature-out="$art/sig_portfolio_jobs4" \
      >/dev/null 2>&1
  if ! cmp -s "$art/sig_portfolio_jobs1" "$art/sig_portfolio_jobs4"; then
    echo "FAIL: portfolio signature depends on --jobs (determinism)"
    exit 1
  fi
  if ! grep -q "proven-unbounded" "$art/portfolio_clean.stdout"; then
    echo "FAIL: clean portfolio audit produced no proven-unbounded verdict"
    exit 1
  fi
  if ! grep -q "portfolio wins:" "$art/portfolio_clean.stdout"; then
    echo "FAIL: portfolio audit printed no win tallies"
    exit 1
  fi

  echo "=== [release] audit service smoke (daemon + verdict cache) ==="
  # Start the daemon with a fresh cache, submit the catalog IP over the
  # socket, and require the streamed signature to be byte-identical to a
  # direct audit of the same files. A warm re-submit must then be served
  # entirely from the verdict cache (zero engine runs).
  sock="$art/audit.sock"
  "$rel/tools/trojanscout_cli" serve --socket="$sock" \
      --cache-dir="$art/vcache" >"$art/serve.log" 2>&1 &
  serve_pid=$!
  # No socket-polling loop: the submit client owns connection establishment
  # (bounded retries with exponential backoff + jitter) and fails cleanly
  # if the daemon never comes up.
  status=0
  "$rel/tools/trojanscout_cli" submit --socket="$sock" \
      --connect-retries=50 --connect-delay-ms=50 \
      --design="$art/ip.v" --spec="$src/specs/mc8051_sp.spec" --frames=8 \
      --signature-out="$art/sig_daemon_cold" \
      >"$art/submit_cold.log" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: daemon submit expected exit 2 (trojan found), got $status"
    exit 1
  fi
  status=0
  "$rel/tools/trojanscout_cli" submit --socket="$sock" \
      --design="$art/ip.v" --spec="$src/specs/mc8051_sp.spec" --frames=8 \
      --signature-out="$art/sig_daemon_warm" \
      >"$art/submit_warm.log" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: warm daemon submit expected exit 2, got $status"
    exit 1
  fi
  if ! grep -q "served: 0 from cache" "$art/submit_cold.log"; then
    echo "FAIL: cold submit should not have cache hits"
    exit 1
  fi
  if ! grep -q ", 0 computed" "$art/submit_warm.log"; then
    echo "FAIL: warm submit performed engine runs (expected all-cache)"
    exit 1
  fi
  status=0
  "$rel/tools/trojanscout_cli" audit --design="$art/ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --frames=8 --jobs=2 \
      --signature-out="$art/sig_direct" \
      --flight-out="$art/audit_flight.json" \
      >"$art/audit_direct.stdout" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: direct audit expected exit 2, got $status"
    exit 1
  fi
  if ! cmp -s "$art/sig_daemon_cold" "$art/sig_direct" \
      || ! cmp -s "$art/sig_daemon_warm" "$art/sig_direct"; then
    echo "FAIL: daemon signatures differ from the direct audit"
    exit 1
  fi
  kill -TERM "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  # Cache-instrumented metrics for the schema validator below.
  status=0
  "$rel/tools/trojanscout_cli" audit --design="$art/ip.v" \
      --spec="$src/specs/mc8051_sp.spec" --frames=8 --jobs=2 \
      --cache-dir="$art/vcache" \
      --metrics-out="$art/audit_cached_metrics.jsonl" \
      >"$art/audit_cached.stdout" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: cached audit expected exit 2, got $status"
    exit 1
  fi
  if ! grep -q "\"type\":\"cache\"" "$art/audit_cached_metrics.jsonl"; then
    echo "FAIL: cached audit metrics lack the cache record"
    exit 1
  fi

  echo "=== [release] fleet smoke (TCP coordinator + 2 spawned workers) ==="
  # serve-fleet forks two worker daemons on ephemeral TCP ports sharing an
  # L2 verdict store, shards the job across them by obligation key, and
  # must merge to the exact direct-audit signature; a warm resubmit must
  # be answered entirely from the worker caches.
  ep_file="$art/fleet.endpoint"
  # 1 ms SLO budgets are unmeetable by design: the smoke must observe the
  # deadline tracker emitting slo_breach events, not a quiet fleet.
  "$rel/tools/trojanscout_cli" serve-fleet --socket=tcp:127.0.0.1:0 \
      --spawn=2 --l2-dir="$art/fleet-l2" --run-dir="$art/fleet-run" \
      --trace-out="$art/fleet_trace.json" \
      --events-out="$art/fleet_events.jsonl" --events-max-mb=64 \
      --sample-interval-ms=100 --slo-ms=1 --slo-obligation-ms=1 \
      --port-file="$ep_file" >"$art/fleet.log" 2>&1 &
  fleet_pid=$!
  # The coordinator picks an ephemeral port, so the endpoint string has to
  # be read back; the file appears only once it is listening.
  for _ in $(seq 150); do [ -s "$ep_file" ] && break; sleep 0.1; done
  if ! [ -s "$ep_file" ]; then
    echo "FAIL: fleet coordinator never published its endpoint"
    exit 1
  fi
  fleet_ep="$(cat "$ep_file")"
  status=0
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" \
      --connect-retries=50 --connect-delay-ms=50 --overload-retries=3 \
      --design="$art/ip.v" --spec="$src/specs/mc8051_sp.spec" --frames=8 \
      --signature-out="$art/sig_fleet_cold" \
      >"$art/fleet_cold.log" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: fleet submit expected exit 2 (trojan found), got $status"
    exit 1
  fi
  # First Prometheus scrape, between the cold and warm submits; the second
  # scrape below must show every cumulative family at >= this value.
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" --metrics \
      --out="$art/fleet_metrics_1.txt"
  status=0
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" \
      --overload-retries=3 \
      --design="$art/ip.v" --spec="$src/specs/mc8051_sp.spec" --frames=8 \
      --signature-out="$art/sig_fleet_warm" \
      >"$art/fleet_warm.log" 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: warm fleet submit expected exit 2, got $status"
    exit 1
  fi
  if ! cmp -s "$art/sig_fleet_cold" "$art/sig_direct" \
      || ! cmp -s "$art/sig_fleet_warm" "$art/sig_direct"; then
    echo "FAIL: fleet signatures differ from the direct audit"
    exit 1
  fi
  if ! grep -q ", 0 computed" "$art/fleet_warm.log"; then
    echo "FAIL: warm fleet submit performed engine runs (expected all-cache)"
    exit 1
  fi
  # Second scrape after the warm submit: cumulative counters must not have
  # gone backwards between two scrapes of the same live coordinator.
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" --metrics \
      --out="$art/fleet_metrics_2.txt"
  python3 "$src/tools/check_metrics.py" --diff-exposition \
      "$art/fleet_metrics_1.txt" "$art/fleet_metrics_2.txt"
  # Merged-telemetry stats reply: per-worker snapshots + their exact sum,
  # archived and schema-validated (the validator recomputes the merge).
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" --stats --json \
      >"$art/fleet_stats.json"
  "$rel/tools/trojanscout_cli" submit --socket="$fleet_ep" --stats \
      >"$art/fleet_stats.txt"
  # Live dashboard against the running fleet: one machine-readable poll
  # (archived + schema-validated below) and a two-poll rendered run that
  # must exit cleanly on its own.
  "$rel/tools/trojanscout_cli" top --socket="$fleet_ep" --once --json \
      >"$art/fleet_top.json"
  "$rel/tools/trojanscout_cli" top --socket="$fleet_ep" --polls=2 \
      --interval-ms=200 >"$art/fleet_top.txt"
  if ! grep -q "jobs" "$art/fleet_top.txt"; then
    echo "FAIL: top did not render a fleet header"
    exit 1
  fi
  kill -TERM "$fleet_pid" 2>/dev/null || true
  wait "$fleet_pid" 2>/dev/null || true
  # The stitched trace is finalized at coordinator stop(); every fleet
  # artifact must exist before validation below.
  for f in fleet_trace.json fleet_events.jsonl fleet_stats.json \
      fleet_metrics_1.txt fleet_metrics_2.txt fleet_top.json; do
    if ! [ -s "$art/$f" ]; then
      echo "FAIL: fleet smoke did not produce $f"
      exit 1
    fi
  done
  # The unmeetable 1 ms SLO must have produced structured breach events.
  if ! grep -q '"type": *"slo_breach"' "$art/fleet_events.jsonl"; then
    echo "FAIL: fleet events lack slo_breach records despite a 1ms SLO"
    exit 1
  fi

  echo "=== [release] artifact schema validation ==="
  python3 "$src/tools/check_metrics.py" --self-test
  python3 "$src/tools/check_metrics.py" \
      "$art/BENCH_table1.json" "$art/BENCH_table2.json" \
      "$art/BENCH_table3.json" "$art/BENCH_parallel_scaling.json" \
      "$art/BENCH_corpus.json" "$art/BENCH_service_throughput.json" \
      "$art/BENCH_portfolio.json" "$art/corpus.json" \
      "$art/table1.jsonl" "$art/table2.jsonl" "$art/table3.jsonl" \
      "$art/portfolio.jsonl" "$art/portfolio_audit_metrics.jsonl" \
      "$art/parallel_scaling.jsonl" "$art/audit_trace.json" \
      "$art/audit_profile.json" "$art/audit_metrics.jsonl" \
      "$art/audit_cached_metrics.jsonl" "$art/audit_flight.json" \
      "$art/fleet_trace.json" "$art/fleet_events.jsonl" \
      "$art/fleet_stats.json" "$art/fleet_top.json" \
      "$art/fleet_metrics_1.txt" "$art/fleet_metrics_2.txt" \
      "$art"/fleet-run/worker*.events.jsonl

  echo "=== [release] bench regression gate ==="
  python3 "$src/tools/bench_compare.py" --self-test
  for name in table1 table2 table3 parallel_scaling corpus \
      service_throughput portfolio; do
    python3 "$src/tools/bench_compare.py" \
        "$src/bench/baselines/BENCH_${name}.json" \
        "$art/BENCH_${name}.json"
  done
  echo "=== [release] observability artifacts archived in $art ==="
else
  echo "=== skipping observability leg (no python3) ==="
fi
# Halt on the first race report so a regression fails the job instead of
# scrolling past.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTROJANSCOUT_SANITIZE=thread
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    run_config asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTROJANSCOUT_SANITIZE=address,undefined

echo "=== CI OK: release + tsan + asan-ubsan suites passed ==="
