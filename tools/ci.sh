#!/bin/sh
# CI driver: builds and tests the tree three times —
#   1. a plain Release-ish build running the full suite,
#   2. a ThreadSanitizer build re-running the suite (the parallel property
#      scheduler, thread pool, and lazy netlist caches execute under TSan,
#      with the equivalence tests exercising jobs > 1), and
#   3. an AddressSanitizer + UndefinedBehaviorSanitizer build (the CDCL
#      solver, DRAT checker, and certificate (de)serializers are dense
#      with raw index arithmetic and byte-level parsing of untrusted
#      certificate input — exactly what ASan/UBSan catch).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

prefix="${1:-build-ci}"
src="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  name="$1"
  shift
  dir="${prefix}-${name}"
  echo "=== [$name] configure -> $dir ==="
  cmake -S "$src" -B "$dir" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config release -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Metrics artifact smoke test: regenerate one small Table-1 row with
# --metrics-out and validate the JSON-lines schema. Guarded on python3 so
# the sanitizer-only environments without it still pass.
if command -v python3 >/dev/null 2>&1; then
  echo "=== [release] metrics artifact smoke ==="
  "${prefix}-release/bench/bench_table1" --only=MC8051-T800 --budget=5 \
      --depth-budget=1 --metrics-out "${prefix}-release/BENCH_table1.json"
  python3 "$src/tools/check_metrics.py" "${prefix}-release/BENCH_table1.json"
else
  echo "=== skipping metrics artifact smoke (no python3) ==="
fi
# Halt on the first race report so a regression fails the job instead of
# scrolling past.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTROJANSCOUT_SANITIZE=thread
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    run_config asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTROJANSCOUT_SANITIZE=address,undefined

echo "=== CI OK: release + tsan + asan-ubsan suites passed ==="
