// Regenerates Table 2: the valid ways to update the RISC's registers, as
// registered in the machine-readable spec the monitors are generated from.
// The rows are printed straight from the DesignSpec — this is the defender's
// "datasheet contract" the Eq. 2 monitors enforce.
#include <iostream>

#include "bench_common.hpp"
#include "designs/risc.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  const bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  bench::MetricsSink sink(cli, "table2");

  // This bench runs no engines; the only measurable work is building the
  // RISC design + spec, so that is what the --bench-out artifact tracks.
  for (std::size_t rep = 1; rep < config.repeats; ++rep) {
    util::Stopwatch timer;
    (void)designs::build_risc({});
    sink.bench().add_sample("build:risc", timer.elapsed_seconds());
  }
  util::Stopwatch build_timer;
  const designs::Design design = designs::build_risc({});
  sink.bench().add_sample("build:risc", build_timer.elapsed_seconds());
  // The machine-readable twin of the table: one "spec" record per register
  // (this bench runs no engines, so there are no timing fields at all).
  for (const auto& spec : design.spec.registers) {
    if (!sink.enabled()) break;
    sink.report()
        .add("spec")
        .set("design", design.name)
        .set("register", spec.reg)
        .set("ways", spec.ways.size())
        .set("obligations", spec.obligations.size());
  }
  std::cout << "=== Table 2: Valid ways to update registers in RISC ===\n\n";

  util::Table table({"Register", "Cycle", "Valid way", "Value"});
  for (const auto& spec : design.spec.registers) {
    bool first = true;
    for (const auto& way : spec.ways) {
      table.add_row({first ? spec.reg : "", way.cycle_label, way.description,
                     way.value_description});
      first = false;
    }
  }
  table.print(std::cout);

  std::cout << "\nObservability obligations (used by the Eq. 4 bypass "
               "check):\n\n";
  util::Table obligations({"Register", "Obligation", "Latency"});
  for (const auto& spec : design.spec.registers) {
    for (const auto& o : spec.obligations) {
      obligations.add_row(
          {spec.reg, o.description, std::to_string(o.latency)});
    }
  }
  obligations.print(std::cout);
  return sink.flush() ? 0 : 1;
}
