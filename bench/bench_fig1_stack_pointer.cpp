// Regenerates Figure 1 / Examples 1, 2 and 4: the RISC stack-pointer Trojan.
//
// Scenario: the stack pointer's valid ways are CALL (+1), RETURN (-1) and
// RESET (0). The Trojan counts instructions whose bits [13:10] lie in
// 0x4..0xB and, at the configured count, decrements SP by two.
//
// The bench demonstrates:
//  1. Example 2 — BMC produces a counterexample made of trigger-pattern
//     instructions (the paper's "100 ADD instructions"; ADDLW carries bits
//     0x7 in [13:10] here), and the witness replays to a corrupted SP.
//  2. Example 4 — the bound matters: unrolled below 4 x trigger_count
//     cycles, no counterexample exists; at the threshold it appears.
//  3. The ATPG back end finds the same Trojan.
#include <iostream>

#include "bench_common.hpp"
#include "designs/risc.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  const unsigned trigger = static_cast<unsigned>(
      cli.get_int("trigger", config.risc_trigger_count));

  designs::RiscOptions options;
  options.trojan = designs::RiscTrojan::kFig1StackPointer;
  options.trigger_count = trigger;
  const designs::Design design = designs::build_risc(options);

  std::cout << "=== Figure 1: RISC stack-pointer Trojan (trigger count "
            << trigger << ") ===\n\n";

  // Example 4: sweep the BMC bound around the 4 * trigger threshold.
  util::Table sweep({"BMC bound (cycles)", "Result", "Violation cycle",
                     "Time (s)"});
  const std::size_t threshold = 4 * trigger;
  for (const std::size_t bound :
       {threshold / 2, threshold - 4, threshold + 8, threshold + 40}) {
    core::EngineOptions engine;
    engine.kind = core::EngineKind::kBmc;
    engine.max_frames = bound;
    engine.time_limit_seconds = config.budget_seconds;
    core::DetectorOptions detector_options;
    detector_options.engine = engine;
    core::TrojanDetector detector(design, detector_options);
    const core::CheckResult result = detector.check_corruption("stack_pointer");
    sweep.add_row({std::to_string(bound),
                   result.violated ? "counterexample" : "no counterexample",
                   result.violated
                       ? std::to_string(result.witness->violation_frame)
                       : "-",
                   util::cell_double(result.seconds, 2)});
  }
  sweep.print(std::cout);
  std::cout << "(Example 4: below ~" << threshold
            << " unrolled cycles the trigger cannot complete.)\n\n";

  // Example 2: inspect the witness instruction stream.
  core::EngineOptions engine;
  engine.kind = core::EngineKind::kBmc;
  engine.max_frames = threshold + 40;
  engine.time_limit_seconds = config.budget_seconds;
  core::DetectorOptions detector_options;
  detector_options.engine = engine;
  core::TrojanDetector detector(design, detector_options);
  const core::CheckResult result = detector.check_corruption("stack_pointer");
  if (result.violated) {
    const auto& witness = *result.witness;
    std::size_t in_range = 0;
    for (std::size_t t = 0; t + 3 < witness.frames.size(); t += 4) {
      const std::uint64_t instr =
          witness.port_value(design.nl, "prog_data", t + 3);
      const unsigned msb4 = static_cast<unsigned>((instr >> 10) & 0xF);
      if (msb4 >= 0x4 && msb4 <= 0xB) ++in_range;
    }
    std::cout << "Witness: " << witness.frames.size()
              << " cycles; instruction windows with bits[13:10] in 0x4..0xB: "
              << in_range << " (needs " << trigger << ")\n";
    const auto trace =
        sim::replay_register(design.nl, witness, "stack_pointer");
    std::cout << "Stack-pointer trace tail:";
    for (std::size_t t = trace.size() >= 6 ? trace.size() - 6 : 0;
         t < trace.size(); ++t) {
      std::cout << " " << trace[t].to_uint();
    }
    std::cout << "  <- corrupted by -2 outside any valid way\n";
    if (sim::write_witness_vcd(design.nl, witness, "fig1_witness.vcd")) {
      std::cout << "Waveform written to fig1_witness.vcd\n";
    }
  } else {
    std::cout << "BMC found no counterexample (unexpected)\n";
  }

  // ATPG cross-check. Sequential ATPG searches a wider window: its
  // functional-stimulus phase needs enough cycles for a realistic
  // instruction mix (~3/8 trigger-pattern density) to accumulate the count.
  core::DetectorOptions atpg_options;
  atpg_options.engine = bench::make_engine(config, core::EngineKind::kAtpg,
                                           design, "risc",
                                           config.budget_seconds);
  atpg_options.engine.max_frames =
      std::max<std::size_t>(12 * trigger + 80, threshold + 60);
  core::TrojanDetector atpg_detector(design, atpg_options);
  const core::CheckResult atpg = atpg_detector.check_corruption("stack_pointer");
  std::cout << "\nATPG: " << (atpg.violated ? "counterexample at cycle " +
                                                  std::to_string(
                                                      atpg.witness->violation_frame)
                                            : "no counterexample")
            << " in " << util::cell_double(atpg.seconds, 2) << " s\n";
  return 0;
}
