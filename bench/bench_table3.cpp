// Regenerates Table 3: detecting pseudo-critical and bypass registers
// (Section 4 attacks) on the nine benchmarks.
//
// For each benchmark the design is rebuilt with the Trojan's trigger armed
// but its direct payload disabled, and the Section 4 attack transformers
// supply the evasive payload:
//  * pseudo-critical variant: a shadow register intercepts the critical
//    register's fanout and is corrupted on trigger (Eq. 3 exposes it);
//  * bypass variant: a frozen bypass register is muxed over the critical
//    register's fanout on trigger (Eq. 4 fork miter exposes it).
//
// "Detected?" uses both properties; max-#-clk-cycles columns measure how
// deep each engine certifies the property within the depth budget on the
// benign counterparts (faithful mirror / clean design), mirroring the
// paper's 100-second unroll measurements.
#include <iostream>

#include "bench_common.hpp"
#include "designs/attacks.hpp"

namespace trojanscout {
namespace {

using bench::BenchConfig;
using core::CheckResult;
using core::EngineKind;

struct Row {
  std::string detected_bmc = "-";
  std::string detected_atpg = "-";
  std::string pseudo_cycles_bmc = "-";
  std::string pseudo_cycles_atpg = "-";
  std::string bypass_cycles_bmc = "-";
  std::string bypass_cycles_atpg = "-";
};

CheckResult pseudo_check(const BenchConfig& config, EngineKind kind,
                         const designs::BenchmarkInfo& info, bool corrupt,
                         double budget) {
  designs::Design design = info.build(/*payload_enabled=*/false);
  designs::plant_pseudo_critical(design, info.critical_register, corrupt);
  core::DetectorOptions options;
  options.engine = bench::make_engine(config, kind, design, info.family, budget);
  core::TrojanDetector detector(design, options);
  return detector.check_pseudo_pair(
      info.critical_register,
      designs::pseudo_register_name(info.critical_register),
      properties::PseudoPolarity::kIdentity, /*candidate_leads=*/false);
}

CheckResult bypass_check(const BenchConfig& config, EngineKind kind,
                         const designs::BenchmarkInfo& info, bool planted,
                         double budget) {
  designs::Design design = info.build(/*payload_enabled=*/false);
  if (planted) {
    designs::plant_bypass(design, info.critical_register);
  }
  core::DetectorOptions options;
  options.engine = bench::make_engine(config, kind, design, info.family, budget);
  core::TrojanDetector detector(design, options);
  return detector.check_bypass(info.critical_register);
}

CheckResult pseudo_depth_check(const BenchConfig& config, EngineKind kind,
                               const designs::BenchmarkInfo& info,
                               double budget) {
  designs::Design design = info.build(/*payload_enabled=*/false);
  designs::plant_pseudo_critical(design, info.critical_register,
                                 /*corrupt=*/false);
  core::DetectorOptions options;
  options.engine = bench::make_depth_engine(config, kind, budget);
  core::TrojanDetector detector(design, options);
  return detector.check_pseudo_pair(
      info.critical_register,
      designs::pseudo_register_name(info.critical_register),
      properties::PseudoPolarity::kIdentity, /*candidate_leads=*/false);
}

CheckResult bypass_depth_check(const BenchConfig& config, EngineKind kind,
                               const designs::BenchmarkInfo& info,
                               double budget) {
  designs::Design design = info.build(/*payload_enabled=*/false);
  core::DetectorOptions options;
  options.engine = bench::make_depth_engine(config, kind, budget);
  core::TrojanDetector detector(design, options);
  return detector.check_bypass(info.critical_register);
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  BenchConfig config = BenchConfig::from_cli(cli);
  if (!cli.has("budget")) config.budget_seconds = 60;  // default for this bench
  // --only=<substring> restricts the benchmark rows — CI uses it to
  // smoke-test one small core (same contract as bench_table1).
  const std::string only = cli.get_string("only", "");
  bench::MetricsSink sink(cli, "table3");

  std::cout << "=== Table 3: Detecting pseudo-critical and bypass registers "
               "===\n"
            << "engine budget " << config.budget_seconds
            << " s, unroll-depth budget " << config.depth_budget_seconds
            << " s\n\n";

  util::Table table({"Name", "Critical reg", "BMC det?", "ATPG det?",
                     "Pseudo clk (BMC)", "Pseudo clk (ATPG)",
                     "Bypass clk (BMC)", "Bypass clk (ATPG)"});

  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = config.risc_trigger_count;

  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    if (!only.empty() && info.name.find(only) == std::string::npos) continue;
    Row row;
    for (const EngineKind kind : {EngineKind::kBmc, EngineKind::kAtpg}) {
      // Detection: either attack variant being exposed counts.
      const CheckResult pseudo = pseudo_check(config, kind, info,
                                              /*corrupt=*/true,
                                              config.budget_seconds);
      const CheckResult bypass = bypass_check(config, kind, info,
                                              /*planted=*/true,
                                              config.budget_seconds);
      const char* engine = core::engine_name(kind);
      sink.add_check("table3", info.name, engine,
                     "pseudo(" + info.critical_register + ")", pseudo);
      sink.add_check("table3", info.name, engine,
                     "bypass(" + info.critical_register + ")", bypass);
      const bool detected = pseudo.violated || bypass.violated;
      (kind == EngineKind::kBmc ? row.detected_bmc : row.detected_atpg) =
          detected ? "Yes" : "N/A";

      // Unroll-depth measurements on the benign counterparts.
      const CheckResult pseudo_depth = pseudo_depth_check(
          config, kind, info, config.depth_budget_seconds);
      const CheckResult bypass_depth = bypass_depth_check(
          config, kind, info, config.depth_budget_seconds);
      sink.add_check("table3", info.name, engine,
                     "depth:pseudo(" + info.critical_register + ")",
                     pseudo_depth);
      sink.add_check("table3", info.name, engine,
                     "depth:bypass(" + info.critical_register + ")",
                     bypass_depth);
      (kind == EngineKind::kBmc ? row.pseudo_cycles_bmc
                                : row.pseudo_cycles_atpg) =
          bench::frames_cell(pseudo_depth);
      (kind == EngineKind::kBmc ? row.bypass_cycles_bmc
                                : row.bypass_cycles_atpg) =
          bench::frames_cell(bypass_depth);
    }
    table.add_row({info.name, info.critical_register, row.detected_bmc,
                   row.detected_atpg, row.pseudo_cycles_bmc,
                   row.pseudo_cycles_atpg, row.bypass_cycles_bmc,
                   row.bypass_cycles_atpg});
    std::cerr << "[table3] " << info.name << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nFANCI / VeriTrust detect none of these variants (the "
               "Section 4 attacks only add DeTrust-style registered logic); "
               "see bench_table1 for those columns.\n";
  return sink.flush() ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
