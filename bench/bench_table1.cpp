// Regenerates Table 1: detection of the nine Trust-Hub / DeTrust Trojans by
// FANCI, VeriTrust, BMC and ATPG, with per-engine time, memory, and the
// maximum number of clock cycles unrolled within the depth budget.
//
// Semantics per column (see EXPERIMENTS.md):
//  * FANCI / VeriTrust "Detected?": whether any flagged suspect is an actual
//    Trojan gate of the design.
//  * BMC / ATPG "Detected?": whether the Eq. 2 no-data-corruption check on
//    the Trojan's target register produces a counterexample within the
//    budget; time and memory are for that run.
//  * "Max # clk cycles": how deep the same engine can certify the property
//    on the trigger-armed but payload-disabled variant within the depth
//    budget (the design is identical except the corruption mux, so this
//    measures exactly the paper's "how far can you unroll in the budget").
//  * Three clean-design rows reproduce the false-positive experiment.
#include <iostream>

#include "baselines/fanci.hpp"
#include "baselines/veritrust.hpp"
#include "bench_common.hpp"

namespace trojanscout {
namespace {

using bench::BenchConfig;
using core::CheckResult;
using core::EngineKind;

struct EngineRow {
  std::string detected;
  std::string time;
  std::string memory;
  std::string max_cycles;
};

EngineRow run_engine_row(const BenchConfig& config, EngineKind kind,
                         const designs::BenchmarkInfo& info,
                         bench::MetricsSink& sink) {
  EngineRow row;
  const char* engine = core::engine_name(kind);

  // Detection run on the armed design.
  designs::Design armed = info.build(/*payload_enabled=*/true);
  core::DetectorOptions options;
  options.engine =
      bench::make_engine(config, kind, armed, info.family, config.budget_seconds);
  options.scan_pseudo_critical = false;
  options.check_bypass = false;
  core::TrojanDetector detector(armed, options);
  const CheckResult detect = detector.check_corruption(info.critical_register);
  sink.add_check("table1", info.name, engine,
                 "corruption(" + info.critical_register + ")", detect);
  // Extra timing repeats for the --bench-out history (the regression gate
  // wants a stddev); the table cells come from the first run.
  for (std::size_t rep = 1;
       rep < config.repeats && sink.bench().enabled(); ++rep) {
    core::TrojanDetector repeat_detector(armed, options);
    const CheckResult repeat =
        repeat_detector.check_corruption(info.critical_register);
    sink.bench().add_sample(
        bench::bench_case_key(info.name, engine,
                              "corruption(" + info.critical_register + ")"),
        repeat.seconds);
  }
  row.detected = detect.violated ? "Yes" : "N/A";
  row.time = detect.violated ? util::cell_double(detect.seconds, 2) : "N/A";
  row.memory = detect.violated ? bench::mem_cell(detect.memory_bytes) : "N/A";

  // Depth run on the disarmed (payload-disabled) design.
  designs::Design disarmed = info.build(/*payload_enabled=*/false);
  core::DetectorOptions depth_options;
  depth_options.engine =
      bench::make_depth_engine(config, kind, config.depth_budget_seconds);
  depth_options.scan_pseudo_critical = false;
  depth_options.check_bypass = false;
  core::TrojanDetector depth_detector(disarmed, depth_options);
  const CheckResult depth =
      depth_detector.check_corruption(info.critical_register);
  sink.add_check("table1", info.name, engine,
                 "depth:corruption(" + info.critical_register + ")", depth);
  row.max_cycles =
      depth.violated ? "!" + bench::frames_cell(depth) : bench::frames_cell(depth);
  return row;
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  BenchConfig config = BenchConfig::from_cli(cli);
  // --only=<substring> restricts the benchmark rows (and skips the clean
  // rows unless they match) — CI uses it to smoke-test one small core.
  const std::string only = cli.get_string("only", "");
  bench::MetricsSink sink(cli, "table1");

  std::cout << "=== Table 1: Detecting the Trojans from Trust-Hub "
               "(DeTrust-hardened structures) ===\n"
            << "engine budget " << config.budget_seconds
            << " s, unroll-depth budget " << config.depth_budget_seconds
            << " s, RISC trigger count " << config.risc_trigger_count
            << "\n\n";

  util::Table table({"Trojan", "Critical reg", "FANCI", "VeriTrust",
                     "BMC det?", "BMC t(s)", "BMC mem", "BMC max clk",
                     "ATPG det?", "ATPG t(s)", "ATPG mem", "ATPG max clk"});

  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count = config.risc_trigger_count;

  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    if (!only.empty() && info.name.find(only) == std::string::npos) continue;
    const designs::Design design = info.build(/*payload_enabled=*/true);

    // Structural / simulation baselines.
    baselines::FanciOptions fanci_options;
    const auto fanci = baselines::run_fanci(design.nl, fanci_options);
    bool fanci_hit = false;
    for (const auto& s : fanci.suspects) {
      fanci_hit = fanci_hit || design.is_trojan_gate(s.signal);
    }
    const auto workload = baselines::generate_workload(
        design.nl, info.family, info.family == "aes" ? 6000 : 20000, 42);
    const auto veritrust = baselines::run_veritrust(design.nl, workload);
    bool veritrust_hit = false;
    for (const auto& s : veritrust.suspects) {
      veritrust_hit = veritrust_hit || design.is_trojan_gate(s.signal);
    }

    const EngineRow bmc = run_engine_row(config, EngineKind::kBmc, info, sink);
    const EngineRow atpg =
        run_engine_row(config, EngineKind::kAtpg, info, sink);

    table.add_row({info.name, info.critical_register,
                   fanci_hit ? "Yes" : "No", veritrust_hit ? "Yes" : "No",
                   bmc.detected, bmc.time, bmc.memory, bmc.max_cycles,
                   atpg.detected, atpg.time, atpg.memory, atpg.max_cycles});
    std::cerr << "[table1] " << info.name << " done\n";
  }

  // False-positive rows: clean designs must not be flagged.
  for (const char* family : {"mc8051", "risc", "aes"}) {
    if (!only.empty() &&
        (std::string("clean-") + family).find(only) == std::string::npos) {
      continue;
    }
    const designs::Design clean = designs::build_clean(family);
    bool any_violation = false;
    std::size_t min_frames = config.max_frames;
    for (const auto& reg : clean.critical_registers) {
      core::DetectorOptions options;
      options.engine = bench::make_depth_engine(config, EngineKind::kBmc,
                                                config.depth_budget_seconds);
      options.scan_pseudo_critical = false;
      options.check_bypass = false;
      core::TrojanDetector detector(clean, options);
      const CheckResult result = detector.check_corruption(reg);
      sink.add_check("table1", std::string("clean-") + family, "BMC",
                     "depth:corruption(" + reg + ")", result);
      any_violation = any_violation || result.violated;
      min_frames = std::min(min_frames, result.frames_completed);
    }
    table.add_row({std::string("clean-") + family, "(all)", "-", "-",
                   any_violation ? "FALSE POSITIVE" : "No", "-", "-",
                   std::to_string(min_frames), "-", "-", "-", "-"});
    std::cerr << "[table1] clean-" << family << " done\n";
  }

  table.print(std::cout);
  std::cout << "\nNotes: 'N/A' = no counterexample found within the budget "
               "(AES-T1200's trigger needs ~2^128 cycles). Max-clk columns "
               "use the depth budget on the trigger-armed, payload-disabled "
               "variants.\n";
  return sink.flush() ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
