// Validation of the FANCI / VeriTrust baselines (the paper's premise).
//
// Each baseline must catch a naive Trojan (wide one-shot comparator against
// a secret pattern) and miss the same Trojan after DeTrust hardening — the
// reason the paper's formal approach exists. Also reports false-positive
// counts on clean logic, a known weakness of both techniques.
#include <iostream>

#include "baselines/fanci.hpp"
#include "baselines/veritrust.hpp"
#include "bench_common.hpp"
#include "designs/aes.hpp"
#include "designs/mc8051.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  (void)cli;

  std::cout << "=== Baseline validation: naive vs DeTrust-hardened Trojans "
               "===\n\n";
  util::Table table({"Design", "Trojan variant", "FANCI", "FANCI suspects",
                     "VeriTrust", "VT suspects"});

  struct Case {
    std::string label;
    std::string variant;
    designs::Design design;
    std::string family;
    std::size_t workload_cycles;
  };
  std::vector<Case> cases;

  {
    designs::Mc8051Options o;
    o.trojan = designs::Mc8051Trojan::kT700;
    o.detrust_hardened = false;
    cases.push_back({"mc8051-T700", "naive comparator", designs::build_mc8051(o),
                     "mc8051", 20000});
  }
  {
    designs::Mc8051Options o;
    o.trojan = designs::Mc8051Trojan::kT700;
    cases.push_back({"mc8051-T700", "DeTrust-hardened",
                     designs::build_mc8051(o), "mc8051", 20000});
  }
  {
    designs::AesOptions o;
    o.trojan = designs::AesTrojan::kT700;
    o.detrust_hardened = false;
    cases.push_back({"aes-T700", "naive comparator", designs::build_aes(o),
                     "aes", 6000});
  }
  {
    designs::AesOptions o;
    o.trojan = designs::AesTrojan::kT700;
    cases.push_back(
        {"aes-T700", "DeTrust-hardened", designs::build_aes(o), "aes", 6000});
  }

  for (const auto& c : cases) {
    const auto fanci = baselines::run_fanci(c.design.nl);
    bool fanci_hit = false;
    for (const auto& s : fanci.suspects) {
      fanci_hit = fanci_hit || c.design.is_trojan_gate(s.signal);
    }
    const auto workload = baselines::generate_workload(
        c.design.nl, c.family, c.workload_cycles, 42);
    const auto veritrust = baselines::run_veritrust(c.design.nl, workload);
    bool veritrust_hit = false;
    for (const auto& s : veritrust.suspects) {
      veritrust_hit = veritrust_hit || c.design.is_trojan_gate(s.signal);
    }
    table.add_row({c.label, c.variant, fanci_hit ? "DETECTED" : "missed",
                   std::to_string(fanci.suspects.size()),
                   veritrust_hit ? "DETECTED" : "missed",
                   std::to_string(veritrust.suspects.size())});
    std::cerr << "[baseline] " << c.label << " " << c.variant << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n(Suspect counts include the techniques' false positives "
               "on clean logic — rare decodes for FANCI, rarely exercised "
               "paths for VeriTrust.)\n";
  return 0;
}
