// Shared helpers for the table-regeneration benches.
//
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md's per-experiment index) and prints it with util::Table in the
// same row layout as the publication. All binaries accept:
//   --budget=<seconds>        wall clock per engine run (paper: 100)
//   --depth-budget=<seconds>  wall clock for max-unroll-depth measurements
//   --risc-trigger=<count>    RISC Trojan trigger count (default 25)
//   --repeats=<count>         timing repeats per case for --bench-out
//   --bench-out=<file>        standardized BENCH_<name>.json history artifact
//   --metrics-out=<file>      JSON-lines run report (per-run records)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/workloads.hpp"
#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "telemetry/run_report.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"
#include "util/table.hpp"

namespace trojanscout::bench {

struct BenchConfig {
  double budget_seconds = 100.0;
  double depth_budget_seconds = 10.0;
  unsigned risc_trigger_count = 25;
  std::size_t max_frames = 4096;
  std::size_t stimulus_sequences = 16;
  /// Timing repeats per case for the --bench-out artifact (the regression
  /// gate needs a stddev, so CI runs with --repeats=3).
  std::size_t repeats = 1;

  static BenchConfig from_cli(const util::CliParser& cli) {
    BenchConfig config;
    config.budget_seconds = cli.get_double("budget", config.budget_seconds);
    config.depth_budget_seconds =
        cli.get_double("depth-budget", config.depth_budget_seconds);
    config.risc_trigger_count = static_cast<unsigned>(
        cli.get_int("risc-trigger", config.risc_trigger_count));
    config.max_frames =
        static_cast<std::size_t>(cli.get_int("max-frames", config.max_frames));
    config.repeats = static_cast<std::size_t>(
        cli.get_int("repeats", static_cast<std::int64_t>(config.repeats)));
    if (config.repeats == 0) config.repeats = 1;
    return config;
  }
};

/// Standardized bench-history artifact (--bench-out=BENCH_<name>.json):
/// one JSON document per bench run carrying the machine fingerprint, the
/// build's git revision, and per-case run statistics (runs, median, min,
/// max, stddev in seconds). The schema is `trojanscout-bench-v1`;
/// tools/bench_compare.py diffs two artifacts with noise-aware thresholds
/// and tools/ci.sh gates a quick-mode run against the committed baselines
/// in bench/baselines/. Disabled (all calls no-ops) without the flag.
class BenchWriter {
 public:
  /// `bench_name` identifies the suite ("table1", ...); the output path
  /// comes from --bench-out.
  BenchWriter(std::string bench_name, const util::CliParser& cli);

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one timing sample for a case; repeated calls with the same
  /// case name accumulate into that case's run statistics.
  void add_sample(const std::string& case_name, double seconds);

  /// Writes the artifact (cases sorted by name); true on success or when
  /// disabled.
  [[nodiscard]] bool flush() const;

  /// The artifact text (exposed for tests).
  [[nodiscard]] std::string to_json() const;

 private:
  struct Case {
    std::string name;
    std::vector<double> samples;
  };
  Case& case_of(const std::string& name);

  std::string bench_name_;
  std::string path_;
  std::vector<Case> cases_;
};

/// Engine options for a detection run on `design`, including the ATPG
/// functional stimulus hints derived from the family workload generator.
inline core::EngineOptions make_engine(const BenchConfig& config,
                                       core::EngineKind kind,
                                       const designs::Design& design,
                                       const std::string& family,
                                       double budget_seconds) {
  core::EngineOptions engine;
  engine.kind = kind;
  engine.max_frames = config.max_frames;
  engine.time_limit_seconds = budget_seconds;
  if (kind == core::EngineKind::kAtpg) {
    for (std::uint64_t seed = 0; seed < config.stimulus_sequences; ++seed) {
      engine.atpg_stimulus.push_back(baselines::generate_workload(
          design.nl, family, std::min<std::size_t>(config.max_frames, 512),
          1000 + seed));
    }
  }
  return engine;
}

/// Engine options for a *depth* measurement (how many frames can be
/// certified in the budget): the ATPG uses an industrial-style small abort
/// limit per frame and skips the random phase (there is nothing to find).
inline core::EngineOptions make_depth_engine(const BenchConfig& config,
                                             core::EngineKind kind,
                                             double budget_seconds) {
  (void)config;
  core::EngineOptions engine;
  engine.kind = kind;
  engine.max_frames = 1u << 20;
  engine.time_limit_seconds = budget_seconds;
  engine.atpg_backtrack_limit = 64;
  engine.atpg_random_sequences = 0;  // nothing to find on a clean variant
  return engine;
}

inline std::string mem_cell(std::uint64_t bytes) {
  return util::format_bytes(bytes);
}

inline std::string frames_cell(const core::CheckResult& result) {
  return std::to_string(result.frames_completed);
}

/// Stable case key for a bench timing sample: "row/engine/property".
inline std::string bench_case_key(const std::string& row,
                                  const std::string& engine,
                                  const std::string& property) {
  return row + "/" + engine + "/" + property;
}

/// --metrics-out sink shared by the table benches: collects RunReport
/// records while the bench runs and writes the JSON-lines file on flush().
/// Disabled (all calls no-ops) when the flag is absent. Also owns the
/// --bench-out BenchWriter, so every add_check doubles as a timing sample
/// in the BENCH_<name>.json history artifact.
class MetricsSink {
 public:
  explicit MetricsSink(const util::CliParser& cli,
                       std::string bench_name = "bench")
      : path_(cli.get_string("metrics-out", "")),
        bench_(std::move(bench_name), cli) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  telemetry::RunReport& report() { return report_; }
  BenchWriter& bench() { return bench_; }

  /// One "bench" record per engine run: the machine-readable twin of a
  /// table cell. Deterministic fields first, wall clock / memory flagged
  /// timing (tools/check_metrics.py validates this schema).
  void add_check(const std::string& bench, const std::string& row,
                 const std::string& engine, const std::string& property,
                 const core::CheckResult& check) {
    bench_.add_sample(bench_case_key(row, engine, property), check.seconds);
    if (!enabled()) return;
    auto& rec = report_.add("bench");
    rec.set("bench", bench)
        .set("row", row)
        .set("engine", engine)
        .set("property", property)
        .set("status", check.status)
        .set("violated", check.violated)
        .set("bound_reached", check.bound_reached)
        .set("frames_completed", check.frames_completed)
        .set("sat_decisions", check.counters.sat.decisions)
        .set("sat_propagations", check.counters.sat.propagations)
        .set("sat_conflicts", check.counters.sat.conflicts)
        .set("cnf_vars", check.counters.cnf_vars)
        .set("atpg_decisions", check.counters.atpg_decisions)
        .set("atpg_backtracks", check.counters.atpg_backtracks)
        .set("seconds", check.seconds, /*timing=*/true)
        .set("memory_bytes", check.memory_bytes, /*timing=*/true);
  }

  /// Writes the collected records and the bench-history artifact; true
  /// when every enabled output succeeded (or all are disabled).
  bool flush() const {
    bool ok = bench_.flush();
    if (!enabled()) return ok;
    if (!report_.write_file(path_)) {
      std::fprintf(stderr, "[bench] cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(stderr, "[bench] metrics written to %s (%zu records)\n",
                 path_.c_str(), report_.size());
    return ok;
  }

 private:
  std::string path_;
  telemetry::RunReport report_;
  BenchWriter bench_;
};

}  // namespace trojanscout::bench
