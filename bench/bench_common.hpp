// Shared helpers for the table-regeneration benches.
//
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md's per-experiment index) and prints it with util::Table in the
// same row layout as the publication. All binaries accept:
//   --budget=<seconds>        wall clock per engine run (paper: 100)
//   --depth-budget=<seconds>  wall clock for max-unroll-depth measurements
//   --risc-trigger=<count>    RISC Trojan trigger count (default 25)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/workloads.hpp"
#include "core/detector.hpp"
#include "designs/catalog.hpp"
#include "telemetry/run_report.hpp"
#include "util/cli.hpp"
#include "util/resource.hpp"
#include "util/table.hpp"

namespace trojanscout::bench {

struct BenchConfig {
  double budget_seconds = 100.0;
  double depth_budget_seconds = 10.0;
  unsigned risc_trigger_count = 25;
  std::size_t max_frames = 4096;
  std::size_t stimulus_sequences = 16;

  static BenchConfig from_cli(const util::CliParser& cli) {
    BenchConfig config;
    config.budget_seconds = cli.get_double("budget", config.budget_seconds);
    config.depth_budget_seconds =
        cli.get_double("depth-budget", config.depth_budget_seconds);
    config.risc_trigger_count = static_cast<unsigned>(
        cli.get_int("risc-trigger", config.risc_trigger_count));
    config.max_frames =
        static_cast<std::size_t>(cli.get_int("max-frames", config.max_frames));
    return config;
  }
};

/// Engine options for a detection run on `design`, including the ATPG
/// functional stimulus hints derived from the family workload generator.
inline core::EngineOptions make_engine(const BenchConfig& config,
                                       core::EngineKind kind,
                                       const designs::Design& design,
                                       const std::string& family,
                                       double budget_seconds) {
  core::EngineOptions engine;
  engine.kind = kind;
  engine.max_frames = config.max_frames;
  engine.time_limit_seconds = budget_seconds;
  if (kind == core::EngineKind::kAtpg) {
    for (std::uint64_t seed = 0; seed < config.stimulus_sequences; ++seed) {
      engine.atpg_stimulus.push_back(baselines::generate_workload(
          design.nl, family, std::min<std::size_t>(config.max_frames, 512),
          1000 + seed));
    }
  }
  return engine;
}

/// Engine options for a *depth* measurement (how many frames can be
/// certified in the budget): the ATPG uses an industrial-style small abort
/// limit per frame and skips the random phase (there is nothing to find).
inline core::EngineOptions make_depth_engine(const BenchConfig& config,
                                             core::EngineKind kind,
                                             double budget_seconds) {
  (void)config;
  core::EngineOptions engine;
  engine.kind = kind;
  engine.max_frames = 1u << 20;
  engine.time_limit_seconds = budget_seconds;
  engine.atpg_backtrack_limit = 64;
  engine.atpg_random_sequences = 0;  // nothing to find on a clean variant
  return engine;
}

inline std::string mem_cell(std::uint64_t bytes) {
  return util::format_bytes(bytes);
}

inline std::string frames_cell(const core::CheckResult& result) {
  return std::to_string(result.frames_completed);
}

/// --metrics-out sink shared by the table benches: collects RunReport
/// records while the bench runs and writes the JSON-lines file on flush().
/// Disabled (all calls no-ops) when the flag is absent.
class MetricsSink {
 public:
  explicit MetricsSink(const util::CliParser& cli)
      : path_(cli.get_string("metrics-out", "")) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  telemetry::RunReport& report() { return report_; }

  /// One "bench" record per engine run: the machine-readable twin of a
  /// table cell. Deterministic fields first, wall clock / memory flagged
  /// timing (tools/check_metrics.py validates this schema).
  void add_check(const std::string& bench, const std::string& row,
                 const std::string& engine, const std::string& property,
                 const core::CheckResult& check) {
    if (!enabled()) return;
    auto& rec = report_.add("bench");
    rec.set("bench", bench)
        .set("row", row)
        .set("engine", engine)
        .set("property", property)
        .set("status", check.status)
        .set("violated", check.violated)
        .set("bound_reached", check.bound_reached)
        .set("frames_completed", check.frames_completed)
        .set("sat_decisions", check.counters.sat.decisions)
        .set("sat_propagations", check.counters.sat.propagations)
        .set("sat_conflicts", check.counters.sat.conflicts)
        .set("cnf_vars", check.counters.cnf_vars)
        .set("atpg_decisions", check.counters.atpg_decisions)
        .set("atpg_backtracks", check.counters.atpg_backtracks)
        .set("seconds", check.seconds, /*timing=*/true)
        .set("memory_bytes", check.memory_bytes, /*timing=*/true);
  }

  /// Writes the collected records; true on success (or when disabled).
  bool flush() const {
    if (!enabled()) return true;
    if (!report_.write_file(path_)) {
      std::fprintf(stderr, "[bench] cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(stderr, "[bench] metrics written to %s (%zu records)\n",
                 path_.c_str(), report_.size());
    return true;
  }

 private:
  std::string path_;
  telemetry::RunReport report_;
};

}  // namespace trojanscout::bench
