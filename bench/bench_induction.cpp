// Extension bench: unbounded proofs by k-induction.
//
// The paper's protocol certifies "trustworthy for T clock cycles" and resets
// the design past the bound (Section 3.2). For contracts that are
// k-inductive the reset is unnecessary: the table shows which of the
// benchmark registers can be proven corruption-free for all time, and which
// (Trojaned or not inductively expressible) cannot.
#include <iostream>

#include "bench_common.hpp"
#include "designs/aes.hpp"
#include "designs/mc8051.hpp"
#include "properties/monitors.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  const double budget = cli.get_double("budget", 30.0);

  std::cout << "=== k-induction: unbounded no-corruption proofs ===\n\n";
  util::Table table({"Design", "Register", "Result", "k", "Time (s)"});

  struct Case {
    std::string label;
    designs::Design design;
    std::string reg;
  };
  std::vector<Case> cases;
  {
    designs::Design d = designs::build_clean("mc8051");
    for (const auto& reg : d.critical_registers) {
      cases.push_back({"clean mc8051", d, reg});
    }
  }
  {
    designs::Design d = designs::build_clean("risc");
    for (const char* reg : {"stack_pointer", "eeprom_data", "eeprom_address",
                            "interrupt_enable", "sleep_flag"}) {
      cases.push_back({"clean risc", d, reg});
    }
  }
  {
    cases.push_back({"clean aes", designs::build_clean("aes"), "key_reg"});
  }
  {
    designs::Mc8051Options o;
    o.trojan = designs::Mc8051Trojan::kT800;
    cases.push_back({"mc8051 + T800", designs::build_mc8051(o), "sp"});
  }
  {
    designs::AesOptions o;
    o.trojan = designs::AesTrojan::kT1200;
    cases.push_back({"aes + T1200 bomb", designs::build_aes(o), "key_reg"});
  }

  for (auto& c : cases) {
    designs::Design scratch = c.design;
    const auto bad = properties::build_corruption_monitor(
        scratch.nl, scratch.spec.at(c.reg),
        properties::CorruptionMonitorKind::kExact);
    bmc::InductionOptions options;
    options.time_limit_seconds = budget;
    const auto result = bmc::prove_by_induction(scratch.nl, bad, options);
    const char* verdict =
        result.status == bmc::InductionStatus::kProven
            ? "PROVEN forever"
            : result.status == bmc::InductionStatus::kBaseViolated
                  ? "TROJAN (base cex)"
                  : "unknown (not inductive)";
    table.add_row({c.label, c.reg, verdict, std::to_string(result.k_used),
                   util::cell_double(result.seconds, 2)});
    std::cerr << "[induction] " << c.label << "/" << c.reg << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n(A 'proven' row removes the paper's reset-every-T-cycles "
               "caveat for that register; 'unknown' falls back to the "
               "bounded certificate of bench_table1.)\n";
  return 0;
}
