// Micro-benchmarks (google-benchmark) for the substrate layers: simulator
// throughput, CNF encoding rate, SAT solving on the standard detection
// query, SCOAP analysis, and FANCI's sampling kernel.
#include <benchmark/benchmark.h>

#include "baselines/fanci.hpp"
#include "bmc/bmc.hpp"
#include "cnf/unroller.hpp"
#include "designs/catalog.hpp"
#include "designs/mc8051.hpp"
#include "designs/risc.hpp"
#include "netlist/scoap.hpp"
#include "properties/monitors.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace trojanscout {
namespace {

void BM_SimulatorStep_Mc8051(benchmark::State& state) {
  const designs::Design design = designs::build_clean("mc8051");
  sim::Simulator simulator(design.nl);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    simulator.set_input_port("code_op", rng.next_below(256));
    simulator.set_input_port("code_operand", rng.next_below(256));
    simulator.step();
    benchmark::DoNotOptimize(simulator.read_register("acc"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(design.nl.size()));
}
BENCHMARK(BM_SimulatorStep_Mc8051);

void BM_SimulatorStep_Aes(benchmark::State& state) {
  const designs::Design design = designs::build_clean("aes");
  sim::Simulator simulator(design.nl);
  for (auto _ : state) {
    simulator.step();
    benchmark::DoNotOptimize(simulator.read_register("round"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(design.nl.size()));
}
BENCHMARK(BM_SimulatorStep_Aes);

void BM_UnrollerFrame_Risc(benchmark::State& state) {
  designs::Design design = designs::build_clean("risc");
  const auto bad = properties::build_corruption_monitor(
      design.nl, design.spec.at("stack_pointer"),
      properties::CorruptionMonitorKind::kExact);
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver solver;
    cnf::Unroller unroller(design.nl, solver, {bad});
    state.ResumeTiming();
    for (int t = 0; t < 8; ++t) unroller.add_frame();
    benchmark::DoNotOptimize(unroller.vars_allocated());
  }
}
BENCHMARK(BM_UnrollerFrame_Risc);

void BM_BmcDetect_Mc8051T800(benchmark::State& state) {
  designs::Mc8051Options options;
  options.trojan = designs::Mc8051Trojan::kT800;
  for (auto _ : state) {
    state.PauseTiming();
    designs::Design design = designs::build_mc8051(options);
    const auto bad = properties::build_corruption_monitor(
        design.nl, design.spec.at("sp"),
        properties::CorruptionMonitorKind::kExact);
    state.ResumeTiming();
    bmc::BmcOptions bo;
    bo.max_frames = 8;
    const auto result = bmc::check_bad_signal(design.nl, bad, bo);
    benchmark::DoNotOptimize(result.violated());
  }
}
BENCHMARK(BM_BmcDetect_Mc8051T800);

void BM_Scoap_Risc(benchmark::State& state) {
  const designs::Design design = designs::build_clean("risc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::compute_scoap(design.nl));
  }
}
BENCHMARK(BM_Scoap_Risc);

void BM_Fanci_Mc8051(benchmark::State& state) {
  const designs::Design design = designs::build_clean("mc8051");
  baselines::FanciOptions options;
  options.samples = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::run_fanci(design.nl, options));
  }
}
BENCHMARK(BM_Fanci_Mc8051);

}  // namespace
}  // namespace trojanscout

BENCHMARK_MAIN();
