// Ablation / Section 4.4 scaling claims: how many clock cycles each engine
// unrolls as the time budget grows, and the memory each needs.
//
// Reproduced qualitative claims:
//  * ATPG unrolls ~2.5-3x more cycles than BMC in the same budget;
//  * BMC memory grows with unroll depth (CNF copies of the design), ATPG
//    memory stays roughly flat (one ternary value array per frame);
//  * given enough time, designs unroll for >1000 cycles;
//  * AES unrolls fewer frames than the processors (larger per-frame cone).
#include <iostream>

#include "bench_common.hpp"
#include "properties/monitors.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  bench::BenchConfig config = bench::BenchConfig::from_cli(cli);

  std::cout << "=== Unroll-depth scaling: frames certified per time budget "
               "===\n\n";
  util::Table table({"Design", "Register", "Budget (s)", "BMC frames",
                     "BMC mem", "ATPG frames", "ATPG mem", "ATPG/BMC"});

  std::vector<double> budgets = {1.0, 2.0, 5.0};
  if (cli.has("budgets-extended")) budgets.push_back(20.0);

  struct Target {
    const char* family;
    const char* reg;
  };
  for (const Target target : {Target{"mc8051", "sp"},
                              Target{"risc", "stack_pointer"},
                              Target{"aes", "key_reg"}}) {
    for (const double budget : budgets) {
      std::size_t frames[2] = {0, 0};
      std::uint64_t memory[2] = {0, 0};
      for (const auto kind :
           {core::EngineKind::kBmc, core::EngineKind::kAtpg}) {
        const designs::Design design = designs::build_clean(target.family);
        core::DetectorOptions options;
        options.engine = bench::make_depth_engine(config, kind, budget);
        core::TrojanDetector detector(design, options);
        const core::CheckResult result = detector.check_corruption(target.reg);
        const int index = kind == core::EngineKind::kBmc ? 0 : 1;
        frames[index] = result.frames_completed;
        memory[index] = result.memory_bytes;
      }
      const double ratio =
          frames[0] > 0 ? static_cast<double>(frames[1]) /
                              static_cast<double>(frames[0])
                        : 0.0;
      table.add_row({target.family, target.reg, util::cell_double(budget, 1),
                     std::to_string(frames[0]), bench::mem_cell(memory[0]),
                     std::to_string(frames[1]), bench::mem_cell(memory[1]),
                     util::cell_double(ratio, 2)});
      std::cerr << "[unroll] " << target.family << " @ " << budget << "s done\n";
    }
  }
  table.print(std::cout);
  std::cout << "\n(The property is the Eq. 2 corruption check on a clean "
               "design: every frame must be certified UNSAT / search-"
               "exhausted, which is what bounds the achievable depth.)\n";
  return 0;
}
