// Mutation-corpus throughput bench: generates the seeded Trojan corpus
// (src/fuzz) and runs the full differential detection harness over it —
// the same work `trojanscout_cli fuzz` performs, measured so a regression
// in the mutation engine, the obligation schedulers, or the engines
// themselves shows up in the BENCH_corpus.json history artifact that
// tools/bench_compare.py gates against bench/baselines/.
//
// Besides timing, the bench re-asserts the harness's three oracles on the
// small CI corpus: zero clean-design false positives, every reachable
// mutant detected, zero harness (witness/determinism) failures. Exit 1 on
// any violation, so the quick-mode CI leg doubles as a smoke test.
//
//   --seed=N      corpus seed (default 42)
//   --count=N     corpus size (default 24; keep small, this runs in CI)
//   --jobs=N      parallel obligation workers (default 2)
//   --repeats=N   timing repeats for --bench-out (CI uses 3)
#include <iostream>

#include "bench_common.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutation.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout {
namespace {

struct RunOutcome {
  fuzz::CorpusReport report;
  double generate_seconds = 0.0;
  double harness_seconds = 0.0;
};

RunOutcome run_once(const fuzz::CorpusOptions& corpus_options,
                    const fuzz::HarnessOptions& harness_options) {
  RunOutcome out;
  util::Stopwatch generate_timer;
  const std::vector<fuzz::MutationSpec> corpus =
      fuzz::generate_corpus(corpus_options);
  out.generate_seconds = generate_timer.elapsed_seconds();

  util::Stopwatch harness_timer;
  fuzz::CorpusHarness harness(harness_options);
  out.report = harness.run(corpus, corpus_options.seed);
  out.harness_seconds = harness_timer.elapsed_seconds();
  return out;
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  const bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  bench::MetricsSink sink(cli, "corpus");

  fuzz::CorpusOptions corpus_options;
  corpus_options.seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 42));
  corpus_options.count =
      static_cast<std::size_t>(cli.get_int("count", 24));
  fuzz::HarnessOptions harness_options;
  harness_options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 2));

  std::cout << "=== Mutation corpus: seeded Trojan sweep + differential "
               "harness ===\n\n"
            << "seed " << corpus_options.seed << ", " << corpus_options.count
            << " variants, jobs=" << harness_options.jobs << "\n\n";

  RunOutcome last;
  for (std::size_t rep = 0; rep < config.repeats; ++rep) {
    last = run_once(corpus_options, harness_options);
    sink.bench().add_sample("corpus/generate", last.generate_seconds);
    sink.bench().add_sample("corpus/harness", last.harness_seconds);
    for (const auto& quantile : last.report.latency) {
      sink.bench().add_sample("corpus/obligation-p50-" + quantile.engine,
                              quantile.p50_seconds);
    }
  }
  const fuzz::CorpusReport& report = last.report;

  // Per-payload-style detection table (the machine-readable twin lives in
  // the fuzz CLI's --out artifact; this is the human summary).
  util::Table table({"Payload style", "Variants", "Reachable", "Detected"});
  for (int style = 0; style <= static_cast<int>(fuzz::PayloadStyle::kBypass);
       ++style) {
    const auto s = static_cast<fuzz::PayloadStyle>(style);
    std::size_t variants = 0;
    std::size_t reachable = 0;
    std::size_t detected = 0;
    for (const auto& outcome : report.variants) {
      if (outcome.spec.payload != s) continue;
      ++variants;
      if (outcome.reachable) ++reachable;
      if (outcome.detected) ++detected;
    }
    if (variants == 0) continue;
    table.add_row({fuzz::payload_style_name(s), std::to_string(variants),
                   std::to_string(reachable), std::to_string(detected)});
  }
  table.print(std::cout);
  std::cout << "\n" << report.summary() << "\n";
  for (const auto& quantile : report.latency) {
    std::cout << "latency[" << quantile.engine
              << "]: p50=" << quantile.p50_seconds
              << "s p90=" << quantile.p90_seconds
              << "s p99=" << quantile.p99_seconds << "s over "
              << quantile.samples << " obligations\n";
  }

  bool ok = true;
  if (report.false_positive_count != 0) {
    std::cerr << "FAIL: clean-design audit reported a finding\n";
    ok = false;
  }
  if (report.missed_count != 0) {
    std::cerr << "FAIL: " << report.missed_count
              << " simulator-reachable mutant(s) not flagged\n";
    ok = false;
  }
  if (report.failure_count != 0) {
    std::cerr << "FAIL: " << report.failure_count << " harness failure(s)\n";
    ok = false;
  }
  if (!sink.flush()) ok = false;
  return ok ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
