// Load generator for the audit service tier: many concurrent submit
// clients against an in-process AuditDaemon on a TCP endpoint, reporting
// audits/sec and per-submit latency quantiles.
//
// Three phases per repeat (fresh daemon + cold cache each repeat):
//   cold   one submit with an empty cache — every obligation runs an
//          engine (the compute floor);
//   warm   --clients concurrent connections each submitting --per-client
//          identical jobs — every obligation answers from the verdict
//          cache, measuring pure service overhead (framing, dedupe,
//          merge, streaming);
//   mixed  same fleet of clients, but one submits cold jobs (a unique
//          frames bound per job forces fresh cache keys) while the rest
//          stay warm — warm quantiles under compute pressure.
//
// The BENCH_service_throughput.json artifact records latency cases
// (median seconds, lower-is-better) so tools/bench_compare.py can gate
// regressions against bench/baselines/.
//
//   --clients=N      concurrent submit connections (default 8)
//   --per-client=N   submits per client per phase (default 8)
//   --frames=N       unroll bound of the shared warm job (default 8)
//   --budget=S       per-obligation engine budget (default 60)
//   --spec=FILE      valid-ways spec (default specs/mc8051_sp.spec)
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/verdict_cache.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "util/stopwatch.hpp"
#include "verilog/writer.hpp"

namespace trojanscout {
namespace {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

struct PhaseStats {
  std::vector<double> latencies;
  double elapsed_seconds = 0;
  std::size_t submits = 0;
  std::size_t failures = 0;
};

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  bench::MetricsSink sink(cli, "service_throughput");
  const std::size_t clients =
      static_cast<std::size_t>(cli.get_int("clients", 8));
  const std::size_t per_client =
      static_cast<std::size_t>(cli.get_int("per-client", 8));
  const std::size_t repeats =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("repeats", 1)));

  char tmpl[] = "/tmp/ts_bench_svc_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::cerr << "mkdtemp failed\n";
    return 1;
  }
  const std::string dir = tmpl;

  service::AuditJob job;
  job.design_path = dir + "/ip.v";
  job.spec_path = cli.get_string("spec", "specs/mc8051_sp.spec");
  job.frames = static_cast<std::size_t>(cli.get_int("frames", 8));
  job.budget = cli.get_double("budget", 60.0);
  {
    const designs::Design design = designs::build_clean("mc8051");
    std::ofstream os(job.design_path);
    verilog::write_verilog(os, design.nl, design.name);
  }
  if (!std::ifstream(job.spec_path)) {
    std::cerr << "cannot open spec " << job.spec_path
              << " (run from the repo root or pass --spec)\n";
    return 1;
  }

  const auto run_phase = [&](const std::string& endpoint, bool mixed) {
    PhaseStats stats;
    std::mutex mutex;
    std::vector<std::thread> threads;
    util::Stopwatch phase_timer;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        std::size_t failures = 0;
        for (std::size_t i = 0; i < per_client; ++i) {
          service::AuditJob submit = job;
          submit.id = "c" + std::to_string(c) + "-" + std::to_string(i);
          // The mixed stream's client 0 forces cache misses: a unique
          // frames bound per submit yields a fresh set of cache keys.
          const bool cold = mixed && c == 0;
          if (cold) submit.frames = job.frames + 8 + i;
          util::Stopwatch timer;
          service::Client client(endpoint);
          const service::SubmitResult result =
              service::submit_audit(client, submit);
          const double seconds = timer.elapsed_seconds();
          if (!result.ok) {
            failures++;
            continue;
          }
          if (!cold) local.push_back(seconds);  // quantiles track warm only
        }
        std::lock_guard<std::mutex> lock(mutex);
        stats.latencies.insert(stats.latencies.end(), local.begin(),
                               local.end());
        stats.submits += per_client;
        stats.failures += failures;
      });
    }
    for (std::thread& thread : threads) thread.join();
    stats.elapsed_seconds = phase_timer.elapsed_seconds();
    return stats;
  };

  util::Table table({"Phase", "Submits", "Audits/s", "p50 (s)", "p99 (s)",
                     "Mean (s)"});
  bool failed = false;
  for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
    // Fresh daemon + cold cache per repeat so the cold case stays cold.
    const std::string cache_dir =
        dir + "/cache-" + std::to_string(repeat);
    cache::VerdictCache::Options cache_options;
    cache_options.dir = cache_dir;
    cache_options.mode = cache::CacheMode::kReadWrite;
    cache::VerdictCache verdict_cache(cache_options);

    service::AuditDaemon::Options options;
    options.endpoint = "tcp:127.0.0.1:0";
    options.cache = &verdict_cache;
    service::AuditDaemon daemon(options);
    daemon.start();
    const std::string endpoint = daemon.bound_endpoint();

    {
      service::AuditJob cold = job;
      cold.id = "cold";
      util::Stopwatch timer;
      service::Client client(endpoint);
      const service::SubmitResult result =
          service::submit_audit(client, cold);
      const double seconds = timer.elapsed_seconds();
      if (!result.ok) {
        std::cerr << "cold submit failed: " << result.error << "\n";
        failed = true;
      }
      sink.bench().add_sample("cold/audit", seconds);
      if (repeat == 0) {
        table.add_row({"cold", "1", "-", "-", "-",
                       std::to_string(seconds)});
      }
    }

    const PhaseStats warm = run_phase(endpoint, /*mixed=*/false);
    const PhaseStats mixed = run_phase(endpoint, /*mixed=*/true);
    daemon.stop();

    for (const auto& [name, stats] :
         {std::pair<const char*, const PhaseStats&>{"warm", warm},
          {"mixed", mixed}}) {
      failed = failed || stats.failures > 0;
      sink.bench().add_sample(std::string(name) + "/p50",
                              quantile(stats.latencies, 0.5));
      sink.bench().add_sample(std::string(name) + "/p99",
                              quantile(stats.latencies, 0.99));
      sink.bench().add_sample(std::string(name) + "/mean",
                              mean(stats.latencies));
      if (repeat == 0) {
        const double rate =
            stats.elapsed_seconds > 0
                ? static_cast<double>(stats.submits) / stats.elapsed_seconds
                : 0;
        table.add_row({name, std::to_string(stats.submits),
                       std::to_string(rate),
                       std::to_string(quantile(stats.latencies, 0.5)),
                       std::to_string(quantile(stats.latencies, 0.99)),
                       std::to_string(mean(stats.latencies))});
      }
    }
  }

  // Continuous-monitoring overhead: the same warm fleet against one daemon
  // with the background sampler disabled and one sampling at an aggressive
  // 25 ms (40x the default rate). The sampler snapshots the registry off
  // the request path and publishes lock-free, so warm latency must not
  // move: the gate allows 2% plus a 100 us absolute guard for sub-ms
  // medians on a noisy CI box.
  double sampler_off_mean = 0;
  double sampler_on_mean = 0;
  {
    const std::string cache_dir = dir + "/cache-sampler";
    cache::VerdictCache::Options cache_options;
    cache_options.dir = cache_dir;
    cache_options.mode = cache::CacheMode::kReadWrite;
    cache::VerdictCache verdict_cache(cache_options);
    for (const bool sampled : {false, true}) {
      service::AuditDaemon::Options options;
      options.endpoint = "tcp:127.0.0.1:0";
      options.cache = &verdict_cache;
      options.sample_interval_ms = sampled ? 25.0 : 0.0;
      service::AuditDaemon daemon(options);
      daemon.start();
      const std::string endpoint = daemon.bound_endpoint();
      if (!sampled) {
        // Prime the shared cache once so both legs are pure warm serving.
        service::AuditJob cold = job;
        cold.id = "sampler-prime";
        service::Client client(endpoint);
        const service::SubmitResult result =
            service::submit_audit(client, cold);
        if (!result.ok) {
          std::cerr << "sampler prime submit failed: " << result.error
                    << "\n";
          failed = true;
        }
      }
      const PhaseStats stats = run_phase(endpoint, /*mixed=*/false);
      daemon.stop();
      failed = failed || stats.failures > 0;
      const double m = mean(stats.latencies);
      const char* name = sampled ? "sampler_on" : "sampler_off";
      (sampled ? sampler_on_mean : sampler_off_mean) = m;
      sink.bench().add_sample(std::string(name) + "/mean", m);
      table.add_row({name, std::to_string(stats.submits), "-",
                     std::to_string(quantile(stats.latencies, 0.5)),
                     std::to_string(quantile(stats.latencies, 0.99)),
                     std::to_string(m)});
    }
  }

  std::cout << "=== Audit service throughput (" << clients << " clients x "
            << per_client << " submits, TCP loopback) ===\n\n";
  table.print(std::cout);
  std::cout << "\nWarm latency is pure service overhead (connect, framing, "
               "in-flight dedupe, cache lookups, merge, streaming); the "
               "mixed phase holds one cold client against the warm fleet. "
               "The sampler_* rows serve the same warm load with the 25 ms "
               "background sampler off and on.\n";
  const double sampler_budget = sampler_off_mean * 1.02 + 100e-6;
  if (sampler_on_mean > sampler_budget) {
    std::cerr << "FAIL: sampler overhead " << sampler_on_mean << "s mean vs "
              << sampler_off_mean << "s without (budget " << sampler_budget
              << "s): the sampler is leaking onto the request path\n";
    failed = true;
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (failed) {
    std::cerr << "FAIL: at least one submit did not produce a report\n";
    return 1;
  }
  return sink.flush() ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
