#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#ifndef TROJANSCOUT_GIT_REV
#define TROJANSCOUT_GIT_REV "unknown"
#endif

namespace trojanscout::bench {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_seconds(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

long page_size() {
#if defined(__unix__) || defined(__APPLE__)
  const long size = sysconf(_SC_PAGESIZE);
  if (size > 0) return size;
#endif
  return 0;
}

/// Median over a sorted copy; even counts average the middle pair.
double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double stddev_of(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  // Sample stddev: the gate treats it as measurement noise, so the
  // unbiased (n-1) estimator is the conservative choice.
  return std::sqrt(sq / static_cast<double>(n - 1));
}

}  // namespace

BenchWriter::BenchWriter(std::string bench_name, const util::CliParser& cli)
    : bench_name_(std::move(bench_name)),
      path_(cli.get_string("bench-out", "")) {}

BenchWriter::Case& BenchWriter::case_of(const std::string& name) {
  for (auto& c : cases_) {
    if (c.name == name) return c;
  }
  cases_.push_back({name, {}});
  return cases_.back();
}

void BenchWriter::add_sample(const std::string& case_name, double seconds) {
  if (!enabled()) return;
  case_of(case_name).samples.push_back(seconds);
}

std::string BenchWriter::to_json() const {
  std::vector<Case> sorted = cases_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Case& a, const Case& b) { return a.name < b.name; });

  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"trojanscout-bench-v1\",\n";
  out << "  \"bench\": \"" << json_escape(bench_name_) << "\",\n";
  out << "  \"git_rev\": \"" << json_escape(TROJANSCOUT_GIT_REV) << "\",\n";
  out << "  \"machine\": {\"hostname\": \"" << json_escape(hostname())
      << "\", \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"page_size\": " << page_size() << "},\n";
  out << "  \"cases\": [";
  bool first = true;
  for (const Case& c : sorted) {
    if (c.samples.empty()) continue;
    if (!first) out << ",";
    first = false;
    const double lo = *std::min_element(c.samples.begin(), c.samples.end());
    const double hi = *std::max_element(c.samples.begin(), c.samples.end());
    out << "\n    {\"name\": \"" << json_escape(c.name)
        << "\", \"runs\": " << c.samples.size()
        << ", \"median_seconds\": " << format_seconds(median_of(c.samples))
        << ", \"min_seconds\": " << format_seconds(lo)
        << ", \"max_seconds\": " << format_seconds(hi)
        << ", \"stddev_seconds\": " << format_seconds(stddev_of(c.samples))
        << "}";
  }
  out << "\n  ]\n";
  out << "}\n";
  return out.str();
}

bool BenchWriter::flush() const {
  if (!enabled()) return true;
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path_.c_str());
    return false;
  }
  out << to_json();
  std::fprintf(stderr, "[bench] history written to %s (%zu cases)\n",
               path_.c_str(), cases_.size());
  return static_cast<bool>(out);
}

}  // namespace trojanscout::bench
