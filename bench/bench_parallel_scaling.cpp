// Scaling study for the parallel property scheduler: the full Algorithm 1
// workload on the Table-1 cores (multi-register critical sets with the
// Eq. 3 pseudo-critical scan enabled, so one design fans out into dozens
// of independent property obligations), run serially and then with the
// work-stealing scheduler at 1/2/4/8 workers.
//
// Besides wall clock and speedup, the harness diffs every parallel
// DetectionReport signature against the serial one: the scheduler promises
// byte-identical reports for any jobs value (no fail-fast), and this bench
// fails loudly (exit 1) if that ever breaks.
//
//   --frames=N    unroll bound per obligation (default 12)
//   --budget=S    per-obligation engine budget (default 600, i.e. never the
//                 limiter — timeouts would make the reports nondeterministic)
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "core/parallel_detector.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout {
namespace {

core::DetectorOptions workload_options(const util::CliParser& cli) {
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames =
      static_cast<std::size_t>(cli.get_int("frames", 12));
  options.engine.time_limit_seconds = cli.get_double("budget", 600.0);
  options.scan_pseudo_critical = true;
  options.check_bypass = true;
  return options;
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  // --only=<substring> restricts the workloads (CI quick mode).
  const std::string only = cli.get_string("only", "");
  bench::MetricsSink sink(cli, "parallel_scaling");

  struct Workload {
    std::string name;
    designs::Design design;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"clean-mc8051", designs::build_clean("mc8051")});
  workloads.push_back({"clean-risc", designs::build_clean("risc")});
  for (const auto& info : designs::trojan_benchmarks()) {
    if (info.name == "MC8051-T800") {
      workloads.push_back({info.name, info.build(/*payload_enabled=*/true)});
    }
  }

  std::cout << "=== Parallel property scheduler scaling (Algorithm 1, "
               "BMC, pseudo-critical scan on) ===\n\n"
            << "hardware threads: " << std::thread::hardware_concurrency()
            << " (speedup is bounded by this; on a 1-core host the table "
               "only measures scheduler overhead)\n\n";

  util::Table table({"Workload", "Obligations", "Serial t(s)", "1j t(s)",
                     "2j t(s)", "4j t(s)", "8j t(s)", "4j speedup",
                     "Deterministic?"});

  bool all_identical = true;
  for (auto& workload : workloads) {
    if (!only.empty() && workload.name.find(only) == std::string::npos) {
      continue;
    }
    const core::DetectorOptions options = workload_options(cli);
    core::TrojanDetector serial(workload.design, options);
    const std::size_t obligations = serial.enumerate_obligations().size();

    util::Stopwatch serial_timer;
    const core::DetectionReport serial_report = serial.run();
    const double serial_seconds = serial_timer.elapsed_seconds();
    const std::string serial_signature = serial_report.signature();
    sink.bench().add_sample(workload.name + "/serial", serial_seconds);

    std::vector<std::string> cells = {workload.name,
                                      std::to_string(obligations),
                                      util::cell_double(serial_seconds, 2)};
    double four_job_seconds = serial_seconds;
    bool identical = true;
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      core::ParallelDetectorOptions parallel_options;
      parallel_options.detector = options;
      parallel_options.jobs = jobs;
      core::ParallelDetector parallel(workload.design, parallel_options);
      util::Stopwatch timer;
      const core::DetectionReport report = parallel.run();
      const double seconds = timer.elapsed_seconds();
      sink.bench().add_sample(
          workload.name + "/jobs=" + std::to_string(jobs), seconds);
      if (jobs == 4) four_job_seconds = seconds;
      identical = identical && report.signature() == serial_signature;
      if (sink.enabled()) {
        sink.report()
            .add("scaling")
            .set("workload", workload.name)
            .set("jobs", jobs)
            .set("obligations", obligations)
            .set("deterministic", report.signature() == serial_signature)
            .set("seconds", seconds, /*timing=*/true)
            .set("serial_seconds", serial_seconds, /*timing=*/true);
      }
      cells.push_back(util::cell_double(seconds, 2));
      std::cerr << "[scaling] " << workload.name << " jobs=" << jobs
                << " done (" << util::cell_double(seconds, 2) << " s)\n";
    }
    cells.push_back(util::cell_double(serial_seconds / four_job_seconds, 2) +
                    "x");
    cells.push_back(identical ? "byte-identical" : "MISMATCH");
    all_identical = all_identical && identical;
    table.add_row(cells);
  }

  table.print(std::cout);
  std::cout << "\nEvery obligation (pseudo pair, corruption, bypass) is an "
               "independent engine run; the scheduler merges results in "
               "enumeration order, so the report signature must not depend "
               "on the jobs count.\n";
  if (!all_identical) {
    std::cerr << "FAIL: parallel report diverged from serial report\n";
    return 1;
  }
  return sink.flush() ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
