// Ablation: detection cost versus trigger-sequence length (the paper's
// Example 4 generalized). The RISC Figure-1 Trojan is instantiated with
// increasing trigger counts; the required witness depth grows as 4 x count
// clock cycles and both engines' costs scale with it.
#include <iostream>

#include "bench_common.hpp"
#include "designs/risc.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  if (!cli.has("budget")) config.budget_seconds = 30;  // default for this bench

  std::cout << "=== Trigger-length sweep: RISC Figure-1 stack-pointer Trojan "
               "===\n\n";
  util::Table table({"Trigger count", "Witness depth (BMC)", "BMC time (s)",
                     "ATPG detected?", "ATPG time (s)"});

  for (const unsigned trigger : {2u, 5u, 10u, 25u, 50u}) {
    designs::RiscOptions options;
    options.trojan = designs::RiscTrojan::kFig1StackPointer;
    options.trigger_count = trigger;
    const designs::Design design = designs::build_risc(options);

    core::DetectorOptions bmc_options;
    bmc_options.engine.kind = core::EngineKind::kBmc;
    bmc_options.engine.max_frames = 4 * trigger + 60;
    bmc_options.engine.time_limit_seconds = config.budget_seconds;
    core::TrojanDetector bmc(design, bmc_options);
    const core::CheckResult bmc_result = bmc.check_corruption("stack_pointer");

    core::DetectorOptions atpg_options;
    atpg_options.engine =
        bench::make_engine(config, core::EngineKind::kAtpg, design, "risc",
                           config.budget_seconds);
    // Wider window than BMC's: the ATPG finds the trigger via functional
    // stimuli whose trigger-pattern density is ~3/8 per instruction.
    atpg_options.engine.max_frames = 12 * trigger + 80;
    core::TrojanDetector atpg(design, atpg_options);
    const core::CheckResult atpg_result =
        atpg.check_corruption("stack_pointer");

    table.add_row({std::to_string(trigger),
                   bmc_result.violated
                       ? std::to_string(bmc_result.witness->violation_frame)
                       : "-",
                   util::cell_double(bmc_result.seconds, 2),
                   atpg_result.violated ? "Yes" : "N/A",
                   util::cell_double(atpg_result.seconds, 2)});
    std::cerr << "[sweep] trigger " << trigger << " done\n";
  }
  table.print(std::cout);
  return 0;
}
