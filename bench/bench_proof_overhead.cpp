// Proof-emission overhead study for the certificate subsystem.
//
// For each Table 1-3 workload (the catalog Trojan cores plus the clean
// variants of every family), the harness runs the full Algorithm 1 audit
// three ways and diffs them:
//
//   * detect:  plain serial TrojanDetector (proof logging off) — the
//     baseline the <2%-when-disabled budget is measured against (the
//     listener hook is compiled in either way; "off" is a null pointer
//     check in the solver hot loop).
//   * certify: proof::certify with DRAT logging on, at 1/2/4/8 worker
//     threads — the overhead of recording the formula, streaming learned
//     and deleted clauses, and snapshotting per-frame UNSAT marks.
//   * check:   proof::check_certificate on the emitted certificate — the
//     independent verifier's cost (witness replay + backward DRAT check on
//     re-derived formulas), which should undercut certify time since lazy
//     backward checking skips every lemma outside the dependency core.
//
// The harness exits 1 if any certificate fails its own check or the
// serial and 8-job certificates are not byte-identical.
//
//   --frames=N        unroll bound per obligation (default 8)
//   --budget=S        per-obligation engine budget (default 600)
//   --risc-trigger=N  RISC trigger count (default 4: tractable full audits)
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "proof/certificate.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout {
namespace {

struct Workload {
  std::string name;
  designs::Design design;
};

core::DetectorOptions audit_options(const util::CliParser& cli) {
  core::DetectorOptions options;
  options.engine.kind = core::EngineKind::kBmc;
  options.engine.max_frames =
      static_cast<std::size_t>(cli.get_int("frames", 8));
  options.engine.time_limit_seconds = cli.get_double("budget", 600.0);
  options.scan_pseudo_critical = true;
  options.check_bypass = true;
  return options;
}

std::string percent(double baseline, double measured) {
  if (baseline <= 0.0) return "-";
  return util::cell_double(100.0 * (measured - baseline) / baseline, 1) + "%";
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  designs::CatalogOptions catalog_options;
  catalog_options.risc_trigger_count =
      static_cast<unsigned>(cli.get_int("risc-trigger", 4));

  std::vector<Workload> workloads;
  for (const auto& info : designs::trojan_benchmarks(catalog_options)) {
    workloads.push_back({info.name, info.build(/*payload_enabled=*/true)});
  }
  for (const char* family : {"mc8051", "risc", "aes", "router"}) {
    workloads.push_back(
        {std::string("clean-") + family, designs::build_clean(family)});
  }

  std::cout << "=== DRAT proof emission + certificate overhead "
               "(Algorithm 1, BMC) ===\n\n";

  util::Table table({"Workload", "Oblig.", "Detect t(s)", "Certify 1j",
                     "Overhead", "2j", "4j", "8j", "Proof KiB", "Check t(s)",
                     "Checked"});

  bool all_ok = true;
  for (auto& workload : workloads) {
    const core::DetectorOptions options = audit_options(cli);

    core::TrojanDetector detector(workload.design, options);
    const std::size_t obligations = detector.enumerate_obligations().size();
    util::Stopwatch detect_timer;
    const core::DetectionReport report = detector.run();
    const double detect_seconds = detect_timer.elapsed_seconds();

    proof::CertifyOptions certify_options;
    certify_options.detector = options;

    std::vector<std::string> cells = {workload.name,
                                      std::to_string(obligations),
                                      util::cell_double(detect_seconds, 2)};
    proof::Certificate certificate;
    std::string serial_dump;
    double serial_certify_seconds = 0.0;
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      certify_options.jobs = jobs;
      util::Stopwatch timer;
      proof::Certificate cert = proof::certify(workload.design, certify_options);
      const double seconds = timer.elapsed_seconds();
      const std::string dump = proof::certificate_to_json(cert).dump();
      if (jobs == 1) {
        certificate = std::move(cert);
        serial_dump = dump;
        serial_certify_seconds = seconds;
        cells.push_back(util::cell_double(seconds, 2));
        cells.push_back(percent(detect_seconds, seconds));
      } else {
        cells.push_back(util::cell_double(seconds, 2));
        if (dump != serial_dump) {
          std::cerr << "FAIL: " << workload.name << " certificate at jobs="
                    << jobs << " is not byte-identical to serial\n";
          all_ok = false;
        }
      }
      std::cerr << "[proof] " << workload.name << " jobs=" << jobs << " done ("
                << util::cell_double(seconds, 2) << " s)\n";
    }
    if (certificate.report_signature != report.signature()) {
      std::cerr << "FAIL: " << workload.name
                << " certificate signature diverged from the plain audit\n";
      all_ok = false;
    }

    std::size_t proof_bytes = 0;
    for (const auto& record : certificate.records) {
      if (record.drat.has_value()) proof_bytes += record.drat->drat.size();
    }
    cells.push_back(util::cell_double(
        static_cast<double>(proof_bytes) / 1024.0, 1));

    util::Stopwatch check_timer;
    const proof::CertificateCheckResult check =
        proof::check_certificate(certificate, workload.design);
    cells.push_back(util::cell_double(check_timer.elapsed_seconds(), 2));
    cells.push_back(check.ok ? std::to_string(check.drat_marks_checked) +
                                   " marks"
                             : "REJECTED");
    if (!check.ok) {
      std::cerr << "FAIL: " << workload.name << " certificate rejected: "
                << (check.errors.empty() ? "?" : check.errors[0]) << "\n";
      all_ok = false;
    }
    (void)serial_certify_seconds;
    table.add_row(cells);
  }

  table.print(std::cout);
  std::cout << "\nDetect = plain serial audit (proof listener null). "
               "Certify = same audit with binary-DRAT logging and witness "
               "capture; the Overhead column is the 1-job certify time "
               "against the detect baseline. Check = independent offline "
               "verification (witness replay + backward DRAT on re-derived "
               "formulas).\n";
  if (!all_ok) {
    std::cerr << "FAIL: at least one certificate check or determinism "
                 "invariant failed\n";
    return 1;
  }
  return 0;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
