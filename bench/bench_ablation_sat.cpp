// Ablation: what each CDCL feature buys on the paper's workload.
//
// The detection query (RISC-T100, Eq. 2 on the program counter) is solved
// with clause learning, VSIDS, and phase saving individually disabled.
// Correctness is unaffected (the test suite cross-checks all ablations
// against brute force); this bench quantifies the speed difference.
#include <iostream>

#include "bench_common.hpp"
#include "designs/risc.hpp"

int main(int argc, char** argv) {
  using namespace trojanscout;
  const util::CliParser cli(argc, argv);
  bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  if (!cli.has("budget")) config.budget_seconds = 30;  // default for this bench
  const unsigned trigger = static_cast<unsigned>(cli.get_int("trigger", 10));

  std::cout << "=== SAT-solver feature ablation (BMC on RISC-T100, trigger "
            << trigger << ") ===\n\n";

  struct Variant {
    const char* name;
    sat::SolverOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full CDCL", {}});
  {
    sat::SolverOptions o;
    o.enable_learning = false;
    variants.push_back({"no clause learning", o});
  }
  {
    sat::SolverOptions o;
    o.enable_vsids = false;
    variants.push_back({"no VSIDS (index order)", o});
  }
  {
    sat::SolverOptions o;
    o.enable_phase_saving = false;
    variants.push_back({"no phase saving", o});
  }

  util::Table table({"Solver variant", "Detected?", "Time (s)", "Frames",
                     "Memory"});
  for (const auto& variant : variants) {
    designs::RiscOptions risc_options;
    risc_options.trojan = designs::RiscTrojan::kT100;
    risc_options.trigger_count = trigger;
    const designs::Design design = designs::build_risc(risc_options);

    core::DetectorOptions options;
    options.engine.kind = core::EngineKind::kBmc;
    options.engine.max_frames = 16 * trigger;
    options.engine.time_limit_seconds = config.budget_seconds;
    options.engine.solver = variant.options;
    core::TrojanDetector detector(design, options);
    const core::CheckResult result =
        detector.check_corruption("program_counter");
    table.add_row({variant.name, result.violated ? "Yes" : "N/A",
                   util::cell_double(result.seconds, 3),
                   std::to_string(result.frames_completed),
                   bench::mem_cell(result.memory_bytes)});
    std::cerr << "[ablation] " << variant.name << " done\n";
  }
  table.print(std::cout);
  return 0;
}
