// Engine-portfolio study: per corruption obligation, each engine alone
// (BMC, ATPG, PDR) vs the three-way race, on a Trojaned Table-1 core and
// the clean cores where only PDR can return an unbounded verdict.
//
// Two claims are checked, and the bench exits 1 if either breaks:
//   1. Dominance — the race's verdict is at least as strong as the best
//      single-engine verdict (violated > proven-unbounded > bound-reached),
//      on every obligation. Wall clock is reported but not gated here;
//      tools/bench_compare.py gates the timing samples against the
//      committed baseline.
//   2. Unbounded wins — on the clean designs the portfolio's winner
//      produces a proven-unbounded verdict (the PDR leg converges and the
//      race surfaces it), upgrading the paper's bounded trust claim.
//
//   --only=<substring>  restrict rows (CI quick mode)
//   --frames=N          frame bound per obligation (default 16)
//   --budget=S          per-engine wall-clock budget (default 100)
//   --repeats=N         timing repeats per case for --bench-out
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "portfolio/portfolio.hpp"
#include "util/stopwatch.hpp"

namespace trojanscout {
namespace {

struct Row {
  std::string name;
  std::string family;
  designs::Design design;
  /// Empty = every corruption obligation; otherwise only this register's.
  std::string only_register;
  bool expect_unbounded = false;
};

struct Case {
  std::string label;
  std::string property;
  netlist::Netlist nl;
  netlist::SignalId bad = netlist::kNullSignal;
};

std::vector<Case> corruption_cases(const Row& row) {
  core::TrojanDetector detector(row.design, core::DetectorOptions{});
  std::vector<Case> cases;
  for (const core::Obligation& obligation : detector.enumerate_obligations()) {
    if (obligation.kind != core::Obligation::Kind::kCorruption) continue;
    if (!row.only_register.empty() && obligation.reg != row.only_register) {
      continue;
    }
    auto instrumented = detector.instrument_obligation(obligation);
    Case c;
    c.label = row.name;
    c.property = obligation.property_name();
    c.nl = std::move(instrumented.nl);
    c.bad = instrumented.bad;
    cases.push_back(std::move(c));
  }
  return cases;
}

int strength(const core::CheckResult& r) {
  if (r.violated) return 3;
  if (r.proven_unbounded) return 2;
  if (r.bound_reached) return 1;
  return 0;
}

std::string verdict_cell(const core::CheckResult& r, double seconds) {
  return r.status + " (" + util::cell_double(seconds, 3) + "s)";
}

}  // namespace

int run(int argc, const char* const* argv) {
  const util::CliParser cli(argc, argv);
  const bench::BenchConfig config = bench::BenchConfig::from_cli(cli);
  const std::string only = cli.get_string("only", "");
  const std::size_t frames =
      static_cast<std::size_t>(cli.get_int("frames", 16));
  bench::MetricsSink sink(cli, "portfolio");

  std::vector<Row> rows;
  for (const auto& info : designs::trojan_benchmarks()) {
    if (info.name != "MC8051-T800") continue;
    rows.push_back({info.name, info.family,
                    info.build(/*payload_enabled=*/true),
                    info.critical_register, /*expect_unbounded=*/false});
  }
  rows.push_back({"clean-mc8051", "mc8051", designs::build_clean("mc8051"),
                  "", /*expect_unbounded=*/true});
  rows.push_back({"clean-router", "router", designs::build_clean("router"),
                  "", /*expect_unbounded=*/true});

  std::cout << "=== Engine portfolio vs single engines (corruption "
               "obligations, " << frames << " frames, "
            << config.budget_seconds << " s budget) ===\n\n";

  util::Table table({"Case", "Property", "BMC", "ATPG", "PDR", "Portfolio",
                     "Winner", "Dominates?"});

  constexpr core::EngineKind kSingles[] = {core::EngineKind::kBmc,
                                           core::EngineKind::kAtpg,
                                           core::EngineKind::kPdr};
  bool all_dominate = true;
  bool unbounded_ok = true;
  for (Row& row : rows) {
    if (!only.empty() && row.name.find(only) == std::string::npos) continue;
    for (const Case& c : corruption_cases(row)) {
      // One options block for every engine and for the race itself, so the
      // comparison (and the portfolio's own legs) run identical knobs; the
      // ATPG stimulus hints ride along and are ignored by BMC/PDR.
      core::EngineOptions options = bench::make_engine(
          config, core::EngineKind::kAtpg, row.design, row.family,
          config.budget_seconds);
      options.max_frames = frames;

      std::vector<std::string> cells = {c.label, c.property};
      int best_single = 0;
      for (std::size_t rep = 0; rep < config.repeats; ++rep) {
        core::CheckResult portfolio_result;
        double portfolio_seconds = 0.0;
        for (const core::EngineKind kind : kSingles) {
          util::Stopwatch timer;
          core::CheckResult r =
              portfolio::run_single(c.nl, c.bad, options, kind);
          const double seconds = timer.elapsed_seconds();
          sink.add_check("portfolio", c.label,
                         core::engine_flag_name(kind), c.property, r);
          if (rep + 1 == config.repeats) {
            if (strength(r) > best_single) best_single = strength(r);
            cells.push_back(verdict_cell(r, seconds));
          }
        }
        {
          util::Stopwatch timer;
          portfolio_result = portfolio::race(c.nl, c.bad, options);
          portfolio_seconds = timer.elapsed_seconds();
          sink.add_check("portfolio", c.label, "portfolio", c.property,
                         portfolio_result);
        }
        if (rep + 1 < config.repeats) continue;

        const bool dominates = strength(portfolio_result) >= best_single;
        all_dominate = all_dominate && dominates;
        if (row.expect_unbounded && !portfolio_result.proven_unbounded) {
          unbounded_ok = false;
        }
        cells.push_back(verdict_cell(portfolio_result, portfolio_seconds));
        cells.push_back(core::engine_flag_name(portfolio_result.engine_used));
        cells.push_back(dominates ? "yes" : "NO");
        table.add_row(cells);
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nThe race's verdict selection is deterministic (strength, "
               "then bmc > atpg > pdr), so the Portfolio column must never "
               "be weaker than the strongest single-engine column.\n";
  if (!all_dominate) {
    std::cerr << "FAIL: portfolio verdict weaker than a single engine\n";
    return 1;
  }
  if (!unbounded_ok) {
    std::cerr << "FAIL: clean design without a proven-unbounded verdict\n";
    return 1;
  }
  return sink.flush() ? 0 : 1;
}

}  // namespace trojanscout

int main(int argc, char** argv) { return trojanscout::run(argc, argv); }
